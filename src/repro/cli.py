"""Command-line interface: ``domino-repro``.

Subcommands::

    domino-repro list                     # workloads, prefetchers, experiments
    domino-repro run fig11 [--quick] [--workloads oltp,web_apache] [--n 200000]
    domino-repro run all [--quick] [--jobs 4] [--no-cache]
    domino-repro run fig11 --trace-events t.jsonl [--profile] [--log-level debug]
    domino-repro run all --run-id nightly [--retries 3] [--timeout-s 600]
    domino-repro run all --resume nightly # continue a killed run
    domino-repro compare --workload oltp [--degree 4] [--n 200000]
    domino-repro trace --workload oltp --n 100000 --out oltp.npz
    domino-repro cache stats|clear|gc     # artifact-store maintenance
    domino-repro obs summary t.jsonl      # render a run's telemetry
    domino-repro serve --socket /tmp/d.sock --slots 2   # experiment server
    domino-repro loadgen unix:/tmp/d.sock --tenants 4   # drive + measure it

``run`` goes through the cell runner (see docs/RUNNER.md): ``--jobs N``
fans independent simulation cells across a worker pool and the
content-addressed cache under ``.domino-cache/`` makes repeated and
overlapping runs incremental.  ``--no-cache`` forces re-execution;
``--cache-dir`` (or ``DOMINO_CACHE_DIR``) relocates the store.

Runs are fault tolerant (see docs/ROBUSTNESS.md): a crashed or hung
cell is retried ``--retries`` times with exponential backoff, bounded
by ``--timeout-s``; cells that exhaust the budget are reported as
failed, the surviving cells still render, and the process exits with
code 3 (``EXIT_PARTIAL``) instead of aborting.  ``--run-id NAME``
journals completed cells so ``--resume NAME`` restarts a killed run
where it left off, bit-identically.  The hidden ``--inject-faults``
flag drives the deterministic chaos harness in :mod:`repro.faults`.

``serve`` turns the evaluator into a long-running multi-tenant server
(see docs/SERVING.md): clients submit job specs over a Unix or TCP
socket, a weighted-fair scheduler multiplexes tenants onto worker
slots, and admission control sheds load with retry-after hints when
saturated.  ``loadgen`` is the matching measurement harness: seeded
Poisson-arrival clients plus a BENCH-style JSON report (throughput,
latency percentiles, shed rate, Jain fairness index).

``--trace-events PATH`` turns on the telemetry layer (see
docs/OBSERVABILITY.md): engine, EIT, and scheduler events are collected
— in worker processes too — and written to ``PATH`` as JSONL, together
with a final metrics snapshot.  ``--profile`` adds a per-cell cProfile
pass; ``obs summary`` renders either artifact.  Telemetry never changes
simulation results — only observes them.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from . import __version__
from .config import SystemConfig
from .obs import names as obs_names
from .experiments import ExperimentOptions, experiment_ids, run_experiment
from .prefetchers.registry import PAPER_PREFETCHERS, make_prefetcher, prefetcher_names
from .sim.engine import simulate_trace
from .sim.trace import save_trace
from .workloads import default_suite, get_workload, workload_names
from .workloads.synthetic import generate_trace


#: Exit codes: 0 = success, 1 = unexpected error, 2 = usage/config
#: error, 3 = run completed but some cells failed (partial results).
EXIT_OK = 0
EXIT_USAGE = 2
EXIT_PARTIAL = 3


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _nonnegative_float(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _fraction(text: str) -> float:
    value = float(text)
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(f"must be in [0, 1], got {value}")
    return value


def _options_from_args(args: argparse.Namespace) -> ExperimentOptions:
    options = ExperimentOptions.quick() if args.quick else ExperimentOptions()
    overrides = {}
    if args.n:
        overrides["n_accesses"] = args.n
    if args.workloads:
        overrides["workloads"] = tuple(args.workloads.split(","))
    if args.seed is not None:
        overrides["seed"] = args.seed
    return options.scaled(**overrides) if overrides else options


def _cmd_list(args: argparse.Namespace) -> int:
    print("workloads:   " + ", ".join(workload_names()))
    print("prefetchers: " + ", ".join(prefetcher_names()))
    print("experiments: " + ", ".join(experiment_ids()))
    return 0


def _configure_obs(args: argparse.Namespace) -> bool:
    """Turn telemetry on when a run asks for it; True if enabled."""
    from . import obs

    if not (args.trace_events or args.profile):
        return False
    obs.configure(level=obs.parse_level(args.log_level),
                  sample_every=args.trace_sample,
                  ring=args.trace_ring,
                  profile=args.profile)
    return True


def _write_trace(path: str) -> None:
    """Serialise the collected telemetry (events + spans + snapshot) to
    JSONL.  Reads the base state explicitly: a capture still open on
    some other context must not leak into the run's trace file."""
    from . import obs

    st = obs.base_state()
    if st is None:  # pragma: no cover - guarded by caller
        return
    records = st.trace.events()
    spans = st.spans.spans()
    records.extend(spans)
    records.append({"level": "info", "component": "obs",
                    "event": obs_names.EVT_TRACE_INFO,
                    "events": len(records), "dropped": st.trace.dropped,
                    "sampled_out": st.trace.sampled_out,
                    "spans": len(spans), "spans_dropped": st.spans.dropped})
    records.append({"level": "info", "component": "obs",
                    "event": obs_names.EVT_METRICS_SNAPSHOT,
                    "metrics": st.registry.snapshot()})
    n = obs.write_jsonl(path, records)
    print(f"[obs] wrote {n} events to {path}")


def _cmd_run(args: argparse.Namespace) -> int:
    from . import obs
    from .errors import CheckpointError, ConfigError
    from .faults import parse_fault_spec
    from .obs.trace import span
    from .runner import ExecutionPolicy, set_policy
    from .stats.reporting import bar_chart, render_manifest, to_csv, to_markdown

    if args.resume and args.run_id:
        print("error: --resume already names the run; drop --run-id",
              file=sys.stderr)
        return EXIT_USAGE
    run_id = args.resume or args.run_id
    if run_id and args.no_cache:
        print("error: --run-id/--resume need the artifact cache "
              "(remove --no-cache)", file=sys.stderr)
        return EXIT_USAGE
    try:
        faults = (parse_fault_spec(args.inject_faults)
                  if args.inject_faults else None)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.fastpath is not None:
        # The toggle rides the environment so forked pool workers
        # inherit it (see repro.sim.fastpath.ENV_TOGGLE).
        os.environ["DOMINO_FASTPATH"] = args.fastpath
    if args.no_fastpath:
        os.environ["DOMINO_FASTPATH"] = "0"
    set_policy(ExecutionPolicy(jobs=args.jobs,
                               use_cache=not args.no_cache,
                               cache_dir=args.cache_dir,
                               retries=args.retries,
                               timeout_s=args.timeout_s,
                               keep_going=True,
                               run_id=run_id,
                               resume=bool(args.resume),
                               faults=faults))
    tracing = _configure_obs(args)
    run_scope = obs.scope("cli.run")
    options = _options_from_args(args)
    ids = experiment_ids() if args.experiment == "all" else [args.experiment]
    failed_cells = 0
    try:
        for experiment_id in ids:
            start = time.time()
            run_scope.info(obs_names.EVT_EXPERIMENT_START, experiment=experiment_id)
            with span(obs_names.SPAN_EXPERIMENT, experiment=experiment_id), \
                    obs.timed(f"experiment.{experiment_id}", emit=False):
                result = run_experiment(experiment_id, options)
            if args.format == "md":
                print(to_markdown(result.headers, result.rows, title=result.title))
            elif args.format == "csv":
                print(to_csv(result.headers, result.rows), end="")
            else:
                print(result.render())
            if args.chart:
                try:
                    values = [float(v) for v in result.column(args.chart)]
                except (ValueError, TypeError):
                    print(f"(column {args.chart!r} is not numeric; no chart)")
                else:
                    labels = [str(row[0]) for row in result.rows]
                    print(bar_chart(labels, values, title=f"{args.chart}:"))
            if result.manifest is not None:
                failed_cells += result.manifest.failed
                print(render_manifest(result.manifest))
                run_scope.info(obs_names.EVT_MANIFEST, experiment=experiment_id,
                               manifest=result.manifest.to_dict())
            run_scope.info(obs_names.EVT_EXPERIMENT_END, experiment=experiment_id,
                           wall_s=round(time.time() - start, 3))
            print(f"({time.time() - start:.1f}s)\n")
        if tracing:
            if args.profile:
                from .obs.summary import profile_rows

                st = obs.state()
                ranked = profile_rows(st.trace.events() if st else [], top=5)
                for func, cum_s, ncalls in ranked:
                    print(f"[profile] {cum_s:8.3f}s {ncalls:>10} {func}")
            if args.trace_events:
                _write_trace(args.trace_events)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    finally:
        obs.disable()
    if failed_cells:
        print(f"warning: {failed_cells} cell(s) failed after retries; "
              "results above are partial (exit code 3)", file=sys.stderr)
        return EXIT_PARTIAL
    return EXIT_OK


def _cmd_compare(args: argparse.Namespace) -> int:
    options = _options_from_args(args)
    config = SystemConfig()
    suite = default_suite(seed=options.seed)
    trace = suite.trace(args.workload, options.n_accesses)
    print(f"workload {args.workload}: {len(trace)} accesses, "
          f"{trace.footprint_blocks} distinct blocks")
    for name in PAPER_PREFETCHERS:
        prefetcher = make_prefetcher(name, config, degree=args.degree)
        result = simulate_trace(trace, config, prefetcher,
                                warmup=options.warmup)
        print(f"  {result.summary()}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    config = get_workload(args.workload)
    seed = args.seed if args.seed is not None else 1234
    trace = generate_trace(config, args.n, seed=seed)
    save_trace(trace, args.out)
    print(f"wrote {len(trace)} accesses to {args.out}")
    return 0


def _read_trace_or_fail(path: str) -> list[dict] | None:
    from .obs import read_jsonl

    try:
        events = read_jsonl(path)
    except OSError as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return None
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None
    if not events:
        print(f"error: {path} is empty (no events)", file=sys.stderr)
        return None
    return events


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from .obs import render_summary
    from .obs.summary import summary_json

    events = _read_trace_or_fail(args.trace)
    if events is None:
        return 1
    if args.obs_command == "spans":
        return _cmd_obs_spans(args, events)
    if args.format == "json":
        print(json.dumps(summary_json(events, top=args.top),
                         indent=2, sort_keys=True))
    else:
        print(render_summary(events, top=args.top))
    return 0


def _cmd_obs_spans(args: argparse.Namespace, events: list[dict]) -> int:
    import json

    from .obs.trace import (chrome_trace, critical_path, read_spans,
                            render_span_tree, validate_forest)

    spans = read_spans(events)
    if not spans:
        print(f"error: {args.trace} carries no span records "
              "(was the run traced with this repo version?)", file=sys.stderr)
        return 1
    problems = validate_forest(spans)
    if args.chrome_trace:
        with open(args.chrome_trace, "w", encoding="utf-8") as fh:
            json.dump(chrome_trace(spans), fh, indent=1)
        print(f"[obs] wrote {len(spans)} spans to {args.chrome_trace} "
              "(load in chrome://tracing or ui.perfetto.dev)")
    elif args.critical_path:
        for chain in critical_path(spans)[:args.top]:
            root = chain[0]
            total = (float(root.get("end_s", 0.0))
                     - float(root.get("start_s", 0.0)))
            print(f"trace {root.get('trace')}  {total * 1e3:.3f} ms")
            for record in chain:
                dur = (float(record.get("end_s", 0.0))
                       - float(record.get("start_s", 0.0)))
                share = dur / total if total > 0 else 0.0
                print(f"  {record.get('name'):<20} {dur * 1e3:9.3f} ms "
                      f"({share:5.1%})")
    else:
        print(render_span_tree(spans, top=args.top))
    if problems:
        print(f"warning: span forest has {len(problems)} problem(s):",
              file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analyze import main as analyze_main

    forwarded = list(args.paths)
    forwarded += ["--format", args.format]
    if args.select:
        forwarded += ["--select", args.select]
    if args.ignore:
        forwarded += ["--ignore", args.ignore]
    if args.baseline:
        forwarded += ["--baseline", args.baseline]
    if args.write_baseline:
        forwarded.append("--write-baseline")
    if args.changed:
        forwarded.append("--changed")
    if args.list_rules:
        forwarded.append("--list-rules")
    return analyze_main(forwarded)


def _cmd_cache(args: argparse.Namespace) -> int:
    from .runner import ResultStore

    store = ResultStore(args.cache_dir)
    if args.action == "stats":
        print(store.stats().render())
    elif args.action == "clear":
        print(f"removed {store.clear()} artifacts")
    else:  # gc
        removed = store.gc(keep=args.keep)
        print(f"removed {removed} artifacts, kept newest {args.keep}")
    return 0


def _parse_weights(text: str) -> tuple[tuple[str, float], ...]:
    """``a=2,b=0.5`` -> (("a", 2.0), ("b", 0.5)); argparse type."""
    weights = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        name, sep, value = token.partition("=")
        if not sep:
            raise argparse.ArgumentTypeError(
                f"weight {token!r} is not tenant=WEIGHT")
        try:
            weights.append((name.strip(), float(value)))
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"weight {token!r}: {value!r} is not a number") from None
    return tuple(weights)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import contextlib
    import signal

    from .errors import ReproError
    from .faults import FaultPlan, parse_fault_spec
    from .serve import AdmissionConfig, ExperimentServer, ServeConfig

    try:
        faults = (parse_fault_spec(args.inject_net_faults)
                  if args.inject_net_faults else None)
        config = ServeConfig(
            host=args.host, port=args.port, path=args.socket,
            slots=args.slots, retries=args.retries, timeout_s=args.timeout_s,
            use_cache=not args.no_cache, cache_dir=args.cache_dir,
            admission=AdmissionConfig(
                max_queued_total=args.max_queued,
                max_queued_per_tenant=args.max_queued_per_tenant,
                max_in_flight_per_tenant=args.max_in_flight,
                quota_accesses=args.quota_accesses,
                quota_window_s=args.quota_window_s),
            weights=args.weights,
            max_cells_per_job=args.max_cells,
            allow_remote_shutdown=not args.no_remote_shutdown,
            default_deadline_s=args.deadline_s,
            cancel_on_disconnect=args.cancel_on_disconnect,
            cancel_check_every=args.cancel_check,
            faults=faults)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    tracing = _configure_obs(args)
    server = ExperimentServer(config)

    async def _serve() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        drains = 0

        def _on_signal() -> None:
            # First signal drains gracefully; a second one cancels all
            # in-flight jobs (terminal `cancelled`/server_shutdown
            # frames) and exits as soon as the slots notice.
            nonlocal drains
            drains += 1
            if drains == 1:
                loop.create_task(server.request_shutdown())
            else:
                loop.create_task(server.shutdown_now())

        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, _on_signal)
        print(f"serving on {server.address} "
              f"({config.slots} slots; ctrl-c drains, twice cancels)",
              flush=True)
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    finally:
        if tracing and args.trace_events:
            _write_trace(args.trace_events)
        from . import obs

        obs.disable()
    print("drained; bye")
    return EXIT_OK


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json

    from .errors import ReproError
    from .faults import FaultPlan, parse_fault_spec
    from .serve.loadgen import LoadGenConfig, run_loadgen

    try:
        degrees = [int(d) for d in args.degrees.split(",") if d.strip()]
    except ValueError:
        print(f"error: --degrees {args.degrees!r} is not a comma-separated "
              "list of integers", file=sys.stderr)
        return EXIT_USAGE
    spec = {"workload": args.workload, "prefetcher": args.prefetcher,
            "kind": "trace", "degrees": degrees, "n_accesses": args.n}
    try:
        faults = (parse_fault_spec(args.inject_faults)
                  if args.inject_faults else FaultPlan())
        config = LoadGenConfig(
            address=args.address, tenants=args.tenants,
            jobs_per_tenant=args.jobs_per_tenant, rate_hz=args.rate,
            spec=spec, seed=args.seed if args.seed is not None else 1234,
            faults=faults, job_timeout_s=args.job_timeout_s,
            cancel_p=args.cancel_p, cancel_after_s=args.cancel_after_s,
            deadline_p=args.deadline_p, deadline_s=args.deadline_s)
        report = run_loadgen(config)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except OSError as exc:
        print(f"error: cannot reach {args.address}: {exc}", file=sys.stderr)
        return 1
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote report to {args.out}")
    print(text)
    return EXIT_PARTIAL if report["errors"] or report["failed"] else EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="domino-repro",
        description="Domino Temporal Data Prefetcher (HPCA 2018) reproduction")
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads/prefetchers/experiments")

    run_p = sub.add_parser("run", help="run a paper experiment by id")
    run_p.add_argument("experiment", help="e.g. fig11, table1, or 'all'")
    run_p.add_argument("--quick", action="store_true",
                       help="small sizes / three workloads")
    run_p.add_argument("--n", type=int, default=None, help="accesses per trace")
    run_p.add_argument("--workloads", default=None,
                       help="comma-separated workload names")
    run_p.add_argument("--seed", type=int, default=None)
    run_p.add_argument("--format", choices=["table", "md", "csv"],
                       default="table", help="output format")
    run_p.add_argument("--chart", default=None, metavar="COLUMN",
                       help="append an ASCII bar chart of COLUMN")
    run_p.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                       help="worker processes for cell execution (default 1)")
    run_p.add_argument("--no-fastpath", action="store_true",
                       help="disable the shared L1-filter fast path "
                            "(results are bit-identical either way)")
    run_p.add_argument("--fastpath", choices=["0", "1", "jit"], default=None,
                       help="fast path mode: 0 off, 1 vectorised (default), "
                            "jit numba kernel with soft fallback; results "
                            "are bit-identical in every mode")
    run_p.add_argument("--no-cache", action="store_true",
                       help="bypass the artifact cache (always re-execute)")
    run_p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="artifact cache root (default .domino-cache)")
    run_p.add_argument("--retries", type=_nonnegative_int, default=2,
                       metavar="N", help="retry budget per cell, with "
                                         "exponential backoff (default 2)")
    run_p.add_argument("--timeout-s", type=_positive_float, default=None,
                       metavar="S", help="per-cell wall-clock timeout; hung "
                                         "cells are killed and retried")
    run_p.add_argument("--run-id", default=None, metavar="ID",
                       help="journal completed cells under ID so the run "
                            "can be resumed after a crash")
    run_p.add_argument("--resume", default=None, metavar="RUN_ID",
                       help="resume a journaled run: completed cells are "
                            "served from the cache, bit-identically")
    run_p.add_argument("--inject-faults", default=None, metavar="SPEC",
                       help=argparse.SUPPRESS)  # chaos harness; see repro.faults
    run_p.add_argument("--trace-events", default=None, metavar="PATH",
                       help="enable telemetry and write the JSONL event "
                            "trace to PATH (see docs/OBSERVABILITY.md)")
    run_p.add_argument("--log-level", default="debug",
                       choices=["debug", "info", "warning", "error"],
                       help="minimum severity collected into the event "
                            "trace (default debug)")
    run_p.add_argument("--trace-sample", type=_positive_int, default=1,
                       metavar="N", help="keep every Nth event per "
                                         "(component, event) pair (default 1)")
    run_p.add_argument("--trace-ring", type=_positive_int, default=100_000,
                       metavar="N", help="max buffered events per process "
                                         "and per cell (default 100000)")
    run_p.add_argument("--profile", action="store_true",
                       help="cProfile each executed cell; top functions go "
                            "to stdout and into the event trace")

    cmp_p = sub.add_parser("compare", help="compare prefetchers on one workload")
    cmp_p.add_argument("--workload", required=True, choices=workload_names())
    cmp_p.add_argument("--degree", type=int, default=4)
    cmp_p.add_argument("--quick", action="store_true")
    cmp_p.add_argument("--n", type=int, default=None)
    cmp_p.add_argument("--workloads", default=None, help=argparse.SUPPRESS)
    cmp_p.add_argument("--seed", type=int, default=None)

    trace_p = sub.add_parser("trace", help="generate and save a trace")
    trace_p.add_argument("--workload", required=True, choices=workload_names())
    trace_p.add_argument("--n", type=int, default=100_000)
    trace_p.add_argument("--out", required=True)
    trace_p.add_argument("--seed", type=int, default=None)

    cache_p = sub.add_parser("cache", help="inspect/maintain the artifact cache")
    cache_p.add_argument("action", choices=["stats", "clear", "gc"])
    cache_p.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="artifact cache root (default .domino-cache)")
    cache_p.add_argument("--keep", type=_nonnegative_int, default=1024, metavar="N",
                         help="gc: newest artifacts to keep (default 1024)")

    analyze_p = sub.add_parser(
        "analyze", help="run the AST invariant linter (see docs/ANALYSIS.md)")
    analyze_p.add_argument("paths", nargs="*", default=["src"],
                           help="files or directories (default: src)")
    analyze_p.add_argument("--format", choices=["text", "json", "sarif"],
                           default="text", help="report format (default text)")
    analyze_p.add_argument("--select", default=None, metavar="CODES",
                           help="comma-separated rule codes to run")
    analyze_p.add_argument("--ignore", default=None, metavar="CODES",
                           help="comma-separated rule codes to skip")
    analyze_p.add_argument("--baseline", default=None, metavar="PATH",
                           help="baseline file of grandfathered findings")
    analyze_p.add_argument("--write-baseline", action="store_true",
                           help="regenerate --baseline from this run")
    analyze_p.add_argument("--changed", action="store_true",
                           help="report only findings in files changed "
                                "vs git HEAD")
    analyze_p.add_argument("--list-rules", action="store_true",
                           help="print the rule registry and exit")

    serve_p = sub.add_parser(
        "serve", help="run the multi-tenant experiment server "
                      "(see docs/SERVING.md)")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="TCP bind address (default 127.0.0.1)")
    serve_p.add_argument("--port", type=_nonnegative_int, default=0,
                         help="TCP port (default 0 = ephemeral)")
    serve_p.add_argument("--socket", default=None, metavar="PATH",
                         help="listen on a Unix socket instead of TCP")
    serve_p.add_argument("--slots", type=_positive_int, default=2,
                         help="concurrent worker slots (default 2)")
    serve_p.add_argument("--retries", type=_nonnegative_int, default=1,
                         metavar="N", help="retry budget per served cell")
    serve_p.add_argument("--timeout-s", type=_positive_float, default=None,
                         metavar="S", help="per-cell wall-clock timeout")
    serve_p.add_argument("--no-cache", action="store_true",
                         help="bypass the shared artifact cache")
    serve_p.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="artifact cache root (default .domino-cache)")
    serve_p.add_argument("--max-queued", type=_positive_int, default=64,
                         metavar="N", help="global admission queue bound")
    serve_p.add_argument("--max-queued-per-tenant", type=_positive_int,
                         default=8, metavar="N")
    serve_p.add_argument("--max-in-flight", type=_positive_int, default=2,
                         metavar="N", help="per-tenant concurrent-job cap")
    serve_p.add_argument("--weights", type=_parse_weights, default=(),
                         metavar="T=W,...", help="per-tenant fair-share "
                                                 "weights (default: equal)")
    serve_p.add_argument("--max-cells", type=_positive_int, default=16,
                         metavar="N", help="largest job (in cells) accepted")
    serve_p.add_argument("--deadline-s", type=_positive_float, default=None,
                         metavar="S", help="default per-job deadline applied "
                         "to submits that carry none")
    serve_p.add_argument("--cancel-on-disconnect", action="store_true",
                         help="cancel a tenant's jobs when its submitting "
                         "connection drops (submits may override)")
    serve_p.add_argument("--cancel-check", type=_positive_int, default=4096,
                         metavar="N", help="engine checks its cancel token "
                         "every N simulated accesses")
    serve_p.add_argument("--quota-accesses", type=_nonnegative_int, default=0,
                         metavar="N", help="per-tenant quota in simulated "
                         "accesses per window (0 disables)")
    serve_p.add_argument("--quota-window-s", type=_positive_float,
                         default=60.0, metavar="S",
                         help="quota refill window in seconds")
    serve_p.add_argument("--inject-net-faults", default=None, metavar="SPEC",
                         help="seeded network chaos at the server's write "
                         "boundary, e.g. 'partition:0.5,net_tenants:t0'")
    serve_p.add_argument("--no-remote-shutdown", action="store_true",
                         help="ignore client shutdown requests")
    serve_p.add_argument("--trace-events", default=None, metavar="PATH",
                         help="write the server's JSONL telemetry trace on "
                              "shutdown (see docs/OBSERVABILITY.md)")
    serve_p.add_argument("--log-level", default="debug",
                         choices=["debug", "info", "warning", "error"])
    serve_p.add_argument("--trace-sample", type=_positive_int, default=1,
                         metavar="N", help=argparse.SUPPRESS)
    serve_p.add_argument("--trace-ring", type=_positive_int, default=100_000,
                         metavar="N", help=argparse.SUPPRESS)
    serve_p.set_defaults(profile=False)

    loadgen_p = sub.add_parser(
        "loadgen", help="drive a running server with seeded Poisson "
                        "multi-tenant load and report BENCH JSON")
    loadgen_p.add_argument("address", help="unix:<path> or host:port")
    loadgen_p.add_argument("--tenants", type=_positive_int, default=4)
    loadgen_p.add_argument("--jobs-per-tenant", type=_positive_int, default=8)
    loadgen_p.add_argument("--rate", type=_positive_float, default=2.0,
                           metavar="HZ", help="per-tenant Poisson arrival "
                                              "rate (default 2/s)")
    loadgen_p.add_argument("--seed", type=int, default=None)
    loadgen_p.add_argument("--workload", default="sat_solver",
                           choices=workload_names())
    loadgen_p.add_argument("--prefetcher", default="domino",
                           choices=prefetcher_names())
    loadgen_p.add_argument("--n", type=_positive_int, default=1_000,
                           help="accesses per job trace (default 1000)")
    loadgen_p.add_argument("--degrees", default="1",
                           help="comma-separated degrees per job (default 1)")
    loadgen_p.add_argument("--job-timeout-s", type=_positive_float,
                           default=120.0, metavar="S")
    loadgen_p.add_argument("--cancel-p", type=_fraction, default=0.0,
                           metavar="P", help="fraction of accepted jobs the "
                           "client cancels mid-stream")
    loadgen_p.add_argument("--cancel-after-s", type=_nonnegative_float,
                           default=0.05, metavar="S",
                           help="delay before the cancel frame goes out")
    loadgen_p.add_argument("--deadline-p", type=_fraction, default=0.0,
                           metavar="P", help="fraction of jobs submitted "
                           "with a server-side deadline")
    loadgen_p.add_argument("--deadline-s", type=_positive_float, default=0.05,
                           metavar="S", help="deadline attached to those jobs")
    loadgen_p.add_argument("--inject-faults", default=None, metavar="SPEC",
                           help=argparse.SUPPRESS)  # chaos clients; repro.faults
    loadgen_p.add_argument("--out", default=None, metavar="PATH",
                           help="also write the JSON report to PATH")

    obs_p = sub.add_parser("obs", help="inspect run telemetry")
    obs_sub = obs_p.add_subparsers(dest="obs_command", required=True)
    summary_p = obs_sub.add_parser(
        "summary", help="render event counts, percentiles, and per-cell "
                        "timings from a --trace-events JSONL file")
    summary_p.add_argument("trace", help="JSONL trace written by run --trace-events")
    summary_p.add_argument("--top", type=_positive_int, default=10, metavar="N",
                           help="rows per ranking table (default 10)")
    summary_p.add_argument("--format", choices=["text", "json"], default="text",
                           help="text tables or one machine-readable JSON "
                                "document (default text)")
    spans_p = obs_sub.add_parser(
        "spans", help="render the causal span forest of a traced run")
    spans_p.add_argument("trace", help="JSONL trace written by --trace-events")
    spans_p.add_argument("--top", type=_positive_int, default=20, metavar="N",
                         help="traces rendered / chains printed (default 20)")
    spans_p.add_argument("--chrome-trace", default=None, metavar="PATH",
                         help="write Chrome traceEvents JSON to PATH instead "
                              "(chrome://tracing, ui.perfetto.dev)")
    spans_p.add_argument("--critical-path", action="store_true",
                         help="print the slowest root-to-leaf chain per trace")

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"list": _cmd_list, "run": _cmd_run,
                "compare": _cmd_compare, "trace": _cmd_trace,
                "cache": _cmd_cache, "obs": _cmd_obs,
                "analyze": _cmd_analyze, "serve": _cmd_serve,
                "loadgen": _cmd_loadgen}
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # stdout went away mid-print (`obs spans t.jsonl | head`); exit
        # quietly instead of tracebacking, pointing stdout at devnull so
        # the interpreter's shutdown flush cannot raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
