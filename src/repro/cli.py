"""Command-line interface: ``domino-repro``.

Subcommands::

    domino-repro list                     # workloads, prefetchers, experiments
    domino-repro run fig11 [--quick] [--workloads oltp,web_apache] [--n 200000]
    domino-repro run all [--quick] [--jobs 4] [--no-cache]
    domino-repro compare --workload oltp [--degree 4] [--n 200000]
    domino-repro trace --workload oltp --n 100000 --out oltp.npz
    domino-repro cache stats|clear|gc     # artifact-store maintenance

``run`` goes through the cell runner (see docs/RUNNER.md): ``--jobs N``
fans independent simulation cells across a worker pool and the
content-addressed cache under ``.domino-cache/`` makes repeated and
overlapping runs incremental.  ``--no-cache`` forces re-execution;
``--cache-dir`` (or ``DOMINO_CACHE_DIR``) relocates the store.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import __version__
from .config import SystemConfig
from .experiments import ExperimentOptions, experiment_ids, run_experiment
from .prefetchers.registry import PAPER_PREFETCHERS, make_prefetcher, prefetcher_names
from .sim.engine import simulate_trace
from .sim.trace import save_trace
from .workloads import default_suite, get_workload, workload_names
from .workloads.synthetic import generate_trace


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _options_from_args(args: argparse.Namespace) -> ExperimentOptions:
    options = ExperimentOptions.quick() if args.quick else ExperimentOptions()
    overrides = {}
    if args.n:
        overrides["n_accesses"] = args.n
    if args.workloads:
        overrides["workloads"] = tuple(args.workloads.split(","))
    if args.seed is not None:
        overrides["seed"] = args.seed
    return options.scaled(**overrides) if overrides else options


def _cmd_list(args: argparse.Namespace) -> int:
    print("workloads:   " + ", ".join(workload_names()))
    print("prefetchers: " + ", ".join(prefetcher_names()))
    print("experiments: " + ", ".join(experiment_ids()))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .runner import ExecutionPolicy, set_policy
    from .stats.reporting import bar_chart, render_manifest, to_csv, to_markdown

    set_policy(ExecutionPolicy(jobs=args.jobs,
                               use_cache=not args.no_cache,
                               cache_dir=args.cache_dir))
    options = _options_from_args(args)
    ids = experiment_ids() if args.experiment == "all" else [args.experiment]
    for experiment_id in ids:
        start = time.time()
        result = run_experiment(experiment_id, options)
        if args.format == "md":
            print(to_markdown(result.headers, result.rows, title=result.title))
        elif args.format == "csv":
            print(to_csv(result.headers, result.rows), end="")
        else:
            print(result.render())
        if args.chart:
            try:
                values = [float(v) for v in result.column(args.chart)]
            except (ValueError, TypeError):
                print(f"(column {args.chart!r} is not numeric; no chart)")
            else:
                labels = [str(row[0]) for row in result.rows]
                print(bar_chart(labels, values, title=f"{args.chart}:"))
        if result.manifest is not None:
            print(render_manifest(result.manifest))
        print(f"({time.time() - start:.1f}s)\n")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    options = _options_from_args(args)
    config = SystemConfig()
    suite = default_suite(seed=options.seed)
    trace = suite.trace(args.workload, options.n_accesses)
    print(f"workload {args.workload}: {len(trace)} accesses, "
          f"{trace.footprint_blocks} distinct blocks")
    for name in PAPER_PREFETCHERS:
        prefetcher = make_prefetcher(name, config, degree=args.degree)
        result = simulate_trace(trace, config, prefetcher,
                                warmup=options.warmup)
        print(f"  {result.summary()}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    config = get_workload(args.workload)
    seed = args.seed if args.seed is not None else 1234
    trace = generate_trace(config, args.n, seed=seed)
    save_trace(trace, args.out)
    print(f"wrote {len(trace)} accesses to {args.out}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .runner import ResultStore

    store = ResultStore(args.cache_dir)
    if args.action == "stats":
        print(store.stats().render())
    elif args.action == "clear":
        print(f"removed {store.clear()} artifacts")
    else:  # gc
        removed = store.gc(keep=args.keep)
        print(f"removed {removed} artifacts, kept newest {args.keep}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="domino-repro",
        description="Domino Temporal Data Prefetcher (HPCA 2018) reproduction")
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads/prefetchers/experiments")

    run_p = sub.add_parser("run", help="run a paper experiment by id")
    run_p.add_argument("experiment", help="e.g. fig11, table1, or 'all'")
    run_p.add_argument("--quick", action="store_true",
                       help="small sizes / three workloads")
    run_p.add_argument("--n", type=int, default=None, help="accesses per trace")
    run_p.add_argument("--workloads", default=None,
                       help="comma-separated workload names")
    run_p.add_argument("--seed", type=int, default=None)
    run_p.add_argument("--format", choices=["table", "md", "csv"],
                       default="table", help="output format")
    run_p.add_argument("--chart", default=None, metavar="COLUMN",
                       help="append an ASCII bar chart of COLUMN")
    run_p.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                       help="worker processes for cell execution (default 1)")
    run_p.add_argument("--no-cache", action="store_true",
                       help="bypass the artifact cache (always re-execute)")
    run_p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="artifact cache root (default .domino-cache)")

    cmp_p = sub.add_parser("compare", help="compare prefetchers on one workload")
    cmp_p.add_argument("--workload", required=True, choices=workload_names())
    cmp_p.add_argument("--degree", type=int, default=4)
    cmp_p.add_argument("--quick", action="store_true")
    cmp_p.add_argument("--n", type=int, default=None)
    cmp_p.add_argument("--workloads", default=None, help=argparse.SUPPRESS)
    cmp_p.add_argument("--seed", type=int, default=None)

    trace_p = sub.add_parser("trace", help="generate and save a trace")
    trace_p.add_argument("--workload", required=True, choices=workload_names())
    trace_p.add_argument("--n", type=int, default=100_000)
    trace_p.add_argument("--out", required=True)
    trace_p.add_argument("--seed", type=int, default=None)

    cache_p = sub.add_parser("cache", help="inspect/maintain the artifact cache")
    cache_p.add_argument("action", choices=["stats", "clear", "gc"])
    cache_p.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="artifact cache root (default .domino-cache)")
    cache_p.add_argument("--keep", type=_nonnegative_int, default=1024, metavar="N",
                         help="gc: newest artifacts to keep (default 1024)")

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"list": _cmd_list, "run": _cmd_run,
                "compare": _cmd_compare, "trace": _cmd_trace,
                "cache": _cmd_cache}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
