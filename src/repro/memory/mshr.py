"""Miss-status holding registers (MSHRs).

MSHRs bound the number of outstanding misses a cache level can sustain
and merge secondary misses to the same block into the primary one.  The
timing simulator uses this to cap memory-level parallelism per core (the
paper's L1-D has 32 MSHRs, the LLC 64).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError


@dataclass
class MshrStats:
    allocations: int = 0
    merges: int = 0
    stalls: int = 0


class MshrFile:
    """Tracks outstanding misses keyed by block, each with a ready time."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self._entries: dict[int, float] = {}
        self.stats = MshrStats()

    def outstanding(self, block: int) -> float | None:
        """Ready time of an in-flight miss to ``block``, or None."""
        return self._entries.get(block)

    def can_allocate(self) -> bool:
        """Is a free MSHR available for a new primary miss?"""
        return len(self._entries) < self.capacity

    def allocate(self, block: int, ready_time: float) -> bool:
        """Register an outstanding miss.  Returns False (a merge) if one
        to the same block already exists; merges keep the earlier ready
        time so a later duplicate request never delays the first."""
        if block in self._entries:
            self.stats.merges += 1
            self._entries[block] = min(self._entries[block], ready_time)
            return False
        if len(self._entries) >= self.capacity:
            self.stats.stalls += 1
            raise SimulationError("MSHR file full; caller must retire first")
        self._entries[block] = ready_time
        self.stats.allocations += 1
        return True

    def retire_until(self, now: float) -> list[int]:
        """Free every entry whose fill has completed by ``now``."""
        done = [b for b, t in self._entries.items() if t <= now]
        for b in done:
            del self._entries[b]
        return done

    def earliest_completion(self) -> float | None:
        """Ready time of the next fill, or None when idle."""
        if not self._entries:
            return None
        return min(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, block: int) -> bool:
        return block in self._entries
