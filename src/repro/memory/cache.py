"""Set-associative cache model.

The model tracks only *presence* (tags), not data, which is all a
prefetching study needs.  Each set is a small ordered dict managed by a
replacement policy.  The hot path (``access``) is written for speed: a
plain dict-of-OrderedDict with LRU promotion inline rather than going
through the policy abstraction, because the trace engine calls it once
per memory access.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..config import CacheConfig


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    fills: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0.0 when idle)."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0.0 when idle)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate ``other``'s counters into this object."""
        self.accesses += other.accesses
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.fills += other.fills


class Cache:
    """LRU set-associative cache over block addresses.

    ``access(block)`` returns True on a hit and allocates on a miss
    (write-allocate; this study has no dirty-data concerns).  ``probe``
    checks presence without side effects, ``fill`` inserts without
    counting an access (used for prefetch fills into the L1 after a
    prefetch-buffer hit), and ``invalidate`` drops a block.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.n_sets = config.n_sets
        self.ways = config.ways
        self._set_mask = self.n_sets - 1
        self._power_of_two = (self.n_sets & (self.n_sets - 1)) == 0
        self._sets: list[OrderedDict[int, None]] = [OrderedDict() for _ in range(self.n_sets)]
        self.stats = CacheStats()

    def _index(self, block: int) -> int:
        if self._power_of_two:
            return block & self._set_mask
        return block % self.n_sets

    def access(self, block: int) -> bool:
        """Look up ``block``; allocate it on a miss.  Returns hit?"""
        self.stats.accesses += 1
        line_set = self._sets[self._index(block)]
        if block in line_set:
            line_set.move_to_end(block)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._insert(line_set, block)
        return False

    def access_traced(self, block: int) -> tuple[bool, int | None]:
        """:meth:`access` that also reports the evicted victim.

        Same counters, same replacement behaviour — the only difference
        is the return type: ``(hit, evicted_block_or_None)``.  Used by
        the L1 fast path (:mod:`repro.sim.fastpath`), which must record
        the eviction sequence to replay residency without the cache.
        """
        self.stats.accesses += 1
        line_set = self._sets[self._index(block)]
        if block in line_set:
            line_set.move_to_end(block)
            self.stats.hits += 1
            return True, None
        self.stats.misses += 1
        return False, self._insert(line_set, block)

    def probe(self, block: int) -> bool:
        """Presence check without replacement-state or counter updates."""
        return block in self._sets[self._index(block)]

    def fill(self, block: int) -> int | None:
        """Insert ``block`` (e.g. a prefetch fill).  Returns evicted block."""
        line_set = self._sets[self._index(block)]
        if block in line_set:
            line_set.move_to_end(block)
            return None
        return self._insert(line_set, block)

    def _insert(self, line_set: OrderedDict[int, None], block: int) -> int | None:
        victim = None
        if len(line_set) >= self.ways:
            victim, _ = line_set.popitem(last=False)
            self.stats.evictions += 1
        line_set[block] = None
        self.stats.fills += 1
        return victim

    def invalidate(self, block: int) -> bool:
        """Drop ``block`` if present; returns whether it was resident."""
        line_set = self._sets[self._index(block)]
        if block in line_set:
            del line_set[block]
            return True
        return False

    def flush(self) -> None:
        """Empty the cache (stats are preserved)."""
        for line_set in self._sets:
            line_set.clear()

    def resident_blocks(self) -> list[int]:
        """All currently resident block addresses (test helper)."""
        out: list[int] = []
        for line_set in self._sets:
            out.extend(line_set)
        return out

    def __contains__(self, block: int) -> bool:
        return self.probe(block)

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)
