"""Memory-hierarchy substrate: caches, MSHRs, prefetch buffer, DRAM model.

This package provides the hardware structures the paper's evaluation
depends on: a set-associative L1-D and LLC, miss-status holding registers,
the 32-block prefetch buffer that sits next to the L1-D, a DRAM model with
latency and shared-bandwidth accounting, and an off-chip metadata traffic
ledger used to charge History Table / Index Table accesses (Fig. 15).
"""

from .block import block_of, page_of, page_offset_of
from .cache import Cache, CacheStats
from .dram import DramModel, BandwidthLedger
from .dram_banked import BankedDram, DramTimings
from .hierarchy import MemoryHierarchy, AccessOutcome
from .metadata import MetadataTraffic
from .mshr import MshrFile
from .prefetch_buffer import PrefetchBuffer
from .replacement import LruPolicy, FifoPolicy, RandomPolicy, make_policy

__all__ = [
    "AccessOutcome",
    "BandwidthLedger",
    "BankedDram",
    "DramTimings",
    "Cache",
    "CacheStats",
    "DramModel",
    "FifoPolicy",
    "LruPolicy",
    "MemoryHierarchy",
    "MetadataTraffic",
    "MshrFile",
    "PrefetchBuffer",
    "RandomPolicy",
    "block_of",
    "make_policy",
    "page_of",
    "page_offset_of",
]
