"""Replacement policies for set-associative structures.

A policy instance manages a *single* set.  The cache allocates one policy
object per set; each policy tracks insertion/touch order over opaque keys
(block tags here, but the EIT reuses :class:`LruPolicy` for super-entries).

The three classic policies are provided.  LRU is what the paper's
structures use (IT rows, EIT super-entries and entries are all explicitly
"managed with LRU replacement"); FIFO and Random exist for ablations and
to test the policy interface itself.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import OrderedDict
from collections.abc import Hashable, Iterator


class ReplacementPolicy(ABC):
    """Tracks residency of up to ``capacity`` keys and picks victims."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity

    @abstractmethod
    def insert(self, key: Hashable) -> Hashable | None:
        """Insert ``key``; return the evicted key if the set was full."""

    @abstractmethod
    def touch(self, key: Hashable) -> None:
        """Record a use of resident ``key`` (hit promotion)."""

    @abstractmethod
    def remove(self, key: Hashable) -> None:
        """Remove ``key`` (invalidate) if resident."""

    @abstractmethod
    def __contains__(self, key: Hashable) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def __iter__(self) -> Iterator[Hashable]:
        """Iterate keys from eviction candidate to most protected."""


class LruPolicy(ReplacementPolicy):
    """Least-recently-used replacement over an ordered dict."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._stack: OrderedDict[Hashable, None] = OrderedDict()

    def insert(self, key: Hashable) -> Hashable | None:
        if key in self._stack:
            self._stack.move_to_end(key)
            return None
        victim = None
        if len(self._stack) >= self.capacity:
            victim, _ = self._stack.popitem(last=False)
        self._stack[key] = None
        return victim

    def touch(self, key: Hashable) -> None:
        if key in self._stack:
            self._stack.move_to_end(key)

    def remove(self, key: Hashable) -> None:
        self._stack.pop(key, None)

    def victim(self) -> Hashable | None:
        """Key that would be evicted next, or None if not full."""
        if len(self._stack) < self.capacity:
            return None
        return next(iter(self._stack))

    def __contains__(self, key: Hashable) -> bool:
        return key in self._stack

    def __len__(self) -> int:
        return len(self._stack)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._stack)


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out replacement: hits do not promote."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._queue: OrderedDict[Hashable, None] = OrderedDict()

    def insert(self, key: Hashable) -> Hashable | None:
        if key in self._queue:
            return None
        victim = None
        if len(self._queue) >= self.capacity:
            victim, _ = self._queue.popitem(last=False)
        self._queue[key] = None
        return victim

    def touch(self, key: Hashable) -> None:
        """FIFO ignores hits."""

    def remove(self, key: Hashable) -> None:
        self._queue.pop(key, None)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._queue

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._queue)


class RandomPolicy(ReplacementPolicy):
    """Random replacement with a seedable RNG (deterministic in tests)."""

    def __init__(self, capacity: int, seed: int = 0) -> None:
        super().__init__(capacity)
        self._members: dict[Hashable, int] = {}
        self._order: list[Hashable] = []
        self._rng = random.Random(seed)

    def insert(self, key: Hashable) -> Hashable | None:
        if key in self._members:
            return None
        victim = None
        if len(self._order) >= self.capacity:
            victim = self._order[self._rng.randrange(len(self._order))]
            self.remove(victim)
        self._members[key] = len(self._order)
        self._order.append(key)
        return victim

    def touch(self, key: Hashable) -> None:
        """Random ignores hits."""

    def remove(self, key: Hashable) -> None:
        if key not in self._members:
            return
        idx = self._members.pop(key)
        last = self._order.pop()
        if idx < len(self._order):
            self._order[idx] = last
            self._members[last] = idx

    def __contains__(self, key: Hashable) -> bool:
        return key in self._members

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._order)


_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, capacity: int, seed: int = 0) -> ReplacementPolicy:
    """Instantiate a replacement policy by name ('lru', 'fifo', 'random').

    ``seed`` feeds the RNG of stochastic policies so repeated runs with
    the same configuration replace identically; deterministic policies
    ignore it.
    """
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ValueError(f"unknown replacement policy {name!r}; "
                         f"choose from {sorted(_POLICIES)}") from None
    if cls is RandomPolicy:
        return cls(capacity, seed=seed)
    return cls(capacity)
