"""Two-level cache hierarchy (64 KB L1-D over a shared 4 MB LLC).

The trace-driven coverage engine only needs the L1-D (the paper trains
and evaluates all prefetchers on L1-D miss sequences), but the timing
model also needs to know whether an L1 miss is served by the LLC
(18 cycles) or by main memory (45 ns), so this module composes the two
levels and classifies each access.

The LLC is physically shared between cores; for the quad-core timing
simulation every core gets a *slice view* of one shared :class:`Cache`
instance, which naturally models capacity contention.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..config import SystemConfig
from .cache import Cache


class AccessOutcome(Enum):
    """Where a demand access was served from."""

    L1_HIT = "l1_hit"
    LLC_HIT = "llc_hit"
    MEMORY = "memory"


@dataclass
class HierarchyStats:
    l1_hits: int = 0
    llc_hits: int = 0
    memory_accesses: int = 0

    @property
    def accesses(self) -> int:
        return self.l1_hits + self.llc_hits + self.memory_accesses


class MemoryHierarchy:
    """L1-D in front of a (possibly shared) LLC."""

    def __init__(self, config: SystemConfig, shared_llc: Cache | None = None) -> None:
        self.config = config
        self.l1 = Cache(config.l1d)
        self.llc = shared_llc if shared_llc is not None else Cache(config.llc)
        self.stats = HierarchyStats()

    def access(self, block: int) -> AccessOutcome:
        """Demand access; fills both levels on the respective misses."""
        if self.l1.access(block):
            self.stats.l1_hits += 1
            return AccessOutcome.L1_HIT
        if self.llc.access(block):
            self.stats.llc_hits += 1
            return AccessOutcome.LLC_HIT
        self.stats.memory_accesses += 1
        return AccessOutcome.MEMORY

    def fill_l1(self, block: int) -> None:
        """Install a block in the L1 (e.g. promoted from the prefetch
        buffer after a prefetch hit) without access accounting."""
        self.l1.fill(block)

    def probe_prefetch_target(self, block: int) -> AccessOutcome:
        """Classify where a *prefetch* for ``block`` would be served from
        (prefetches that hit in the LLC cost an LLC access, not DRAM).

        Prefetched blocks go to the prefetch buffer only — they are NOT
        installed in the LLC, so useless prefetches cannot pollute it
        (the point of buffering prefetches outside the hierarchy)."""
        if self.llc.probe(block):
            self.llc.access(block)  # LRU touch on the resident line
            return AccessOutcome.LLC_HIT
        return AccessOutcome.MEMORY

    def latency_of(self, outcome: AccessOutcome) -> int:
        """Load-to-use latency in cycles for an access outcome (memory
        latency excludes queueing, which the DRAM model adds)."""
        if outcome is AccessOutcome.L1_HIT:
            return self.config.l1d.hit_latency
        if outcome is AccessOutcome.LLC_HIT:
            return self.config.llc_latency_cycles
        return self.config.memory_latency_cycles
