"""The 32-block prefetch buffer that sits next to the L1-D.

Per Section IV-D of the paper, *all* evaluated prefetchers prefetch into
a small buffer near the L1-D (capacity 32 blocks) rather than into the
cache itself, so useless prefetches pollute only the buffer.  The buffer
is fully associative with FIFO-of-insertion replacement and tracks, for
every block, whether it was ever consumed by a demand access — evicting
an unconsumed block is an *overprediction* in the paper's terminology.

Each entry also records the stream id that produced it (so a prefetch
hit can advance the right active stream) and a ``ready_time`` used by the
timing simulator to model late prefetches.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class BufferEntry:
    """One prefetched block resident in the buffer."""

    block: int
    stream_id: int
    ready_time: float = 0.0
    used: bool = False


@dataclass
class PrefetchBufferStats:
    inserted: int = 0
    hits: int = 0
    evicted_unused: int = 0
    evicted_used: int = 0
    duplicates_dropped: int = 0


class PrefetchBuffer:
    """Fully-associative prefetch buffer with FIFO replacement."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity <= 0:
            raise ValueError("prefetch buffer capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[int, BufferEntry] = OrderedDict()
        self.stats = PrefetchBufferStats()

    def reset_stats(self) -> None:
        """Forget the counters while keeping the resident entries.

        The warm-up protocol ends its training window by zeroing every
        measurement without perturbing simulated state; callers must use
        this rather than re-``__init__``-ing the stats object in place.
        """
        self.stats = PrefetchBufferStats()

    def insert(self, block: int, stream_id: int = -1, ready_time: float = 0.0) -> BufferEntry | None:
        """Insert a prefetched block; returns the evicted entry, if any.

        A duplicate insert refreshes nothing and is dropped (the block is
        already on its way); the evicted entry, when unconsumed, is what
        the engine counts as an overprediction.
        """
        if block in self._entries:
            self.stats.duplicates_dropped += 1
            return None
        victim: BufferEntry | None = None
        if len(self._entries) >= self.capacity:
            _, victim = self._entries.popitem(last=False)
            if victim.used:
                self.stats.evicted_used += 1
            else:
                self.stats.evicted_unused += 1
        self._entries[block] = BufferEntry(block, stream_id, ready_time)
        self.stats.inserted += 1
        return victim

    def lookup(self, block: int) -> BufferEntry | None:
        """Demand lookup.  On a hit the entry is consumed (removed)."""
        entry = self._entries.pop(block, None)
        if entry is None:
            return None
        entry.used = True
        self.stats.hits += 1
        return entry

    def probe(self, block: int) -> bool:
        """Presence check without consuming the entry."""
        return block in self._entries

    def invalidate_stream(self, stream_id: int) -> int:
        """Drop all blocks fetched by ``stream_id``; unconsumed drops count
        as overpredictions (the paper discards the Prefetch Buffer contents
        of a replaced stream).  Returns the number of blocks dropped."""
        doomed = [b for b, e in self._entries.items() if e.stream_id == stream_id]
        for b in doomed:
            entry = self._entries.pop(b)
            if entry.used:
                self.stats.evicted_used += 1
            else:
                self.stats.evicted_unused += 1
        return len(doomed)

    def drain(self) -> list[BufferEntry]:
        """Empty the buffer, counting unconsumed entries as unused
        (called at end of simulation so totals balance)."""
        leftovers = list(self._entries.values())
        for entry in leftovers:
            if entry.used:
                self.stats.evicted_used += 1
            else:
                self.stats.evicted_unused += 1
        self._entries.clear()
        return leftovers

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, block: int) -> bool:
        return block in self._entries
