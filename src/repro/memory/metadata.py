"""Off-chip metadata traffic ledger for temporal prefetchers.

STMS, Digram, and Domino keep their History Table and Index Table in
main memory; every table read or update is a real off-chip block
transfer (the paper's special "fetch into prefetcher storage" request).
Prefetchers report those transfers through a :class:`MetadataTraffic`
instance so the engine can produce the Fig. 15 decomposition — and so
the timing model can charge the round trips that make STMS need *two*
serialised memory accesses before the first prefetch of a stream while
Domino needs only one.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class MetadataTraffic:
    """Block-granularity metadata transfer counters."""

    index_reads: int = 0
    index_writes: int = 0
    history_reads: int = 0
    history_writes: int = 0

    @property
    def reads(self) -> int:
        """All metadata blocks fetched from memory."""
        return self.index_reads + self.history_reads

    @property
    def writes(self) -> int:
        """All metadata blocks written back to memory."""
        return self.index_writes + self.history_writes

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def merge(self, other: "MetadataTraffic") -> None:
        self.index_reads += other.index_reads
        self.index_writes += other.index_writes
        self.history_reads += other.history_reads
        self.history_writes += other.history_writes

    def reset(self) -> None:
        self.index_reads = 0
        self.index_writes = 0
        self.history_reads = 0
        self.history_writes = 0
