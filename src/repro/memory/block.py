"""Address arithmetic helpers.

All simulators in this repository operate on *block* addresses (byte
address divided by the 64-byte line size).  These helpers centralise the
shifts so the line/page geometry lives in exactly one place
(:mod:`repro.config`).
"""

from __future__ import annotations

from ..config import BLOCK_SHIFT, BLOCKS_PER_PAGE, PAGE_SHIFT


def block_of(byte_addr: int) -> int:
    """Block (line) number containing ``byte_addr``."""
    return byte_addr >> BLOCK_SHIFT

def byte_of(block: int) -> int:
    """First byte address of ``block``."""
    return block << BLOCK_SHIFT


def page_of(block: int) -> int:
    """4 KB page number containing block address ``block``."""
    return block >> (PAGE_SHIFT - BLOCK_SHIFT)


def page_offset_of(block: int) -> int:
    """Block offset of ``block`` within its 4 KB page (0..63)."""
    return block & (BLOCKS_PER_PAGE - 1)


def block_in_page(page: int, offset: int) -> int:
    """Block address of ``offset`` within ``page``."""
    return (page << (PAGE_SHIFT - BLOCK_SHIFT)) | (offset & (BLOCKS_PER_PAGE - 1))
