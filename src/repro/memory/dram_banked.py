"""Banked DRAM model: channels, banks, and row-buffer locality.

The default :class:`~repro.memory.dram.DramModel` treats memory as a
fixed-latency pipe behind a bandwidth queue, which is what the paper's
headline results need.  This optional higher-fidelity backend adds the
structure a 2010s-era DDR3 system actually has:

* ``n_channels`` independent channels (the paper's chip has two memory
  controllers), each with its own data bus;
* ``n_banks`` banks per channel that can serve requests concurrently;
* per-bank **row buffers**: a request to the currently open row is a
  hit (CAS only), a different row pays precharge + activate + CAS.

Addresses are interleaved across channels and banks at block
granularity, rows span ``row_size_blocks`` consecutive blocks.  The
model is still event-free (each request computes its completion time
from per-resource availability), so it stays fast enough for the
timing simulator; swap it in via ``TimingSimulator``'s ``dram``
attribute or use it standalone for memory-subsystem studies.

Default timings approximate DDR3-1866 in 4 GHz core cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import SystemConfig


@dataclass(frozen=True)
class DramTimings:
    """Bank/bus timings in core cycles."""

    cas: int = 50            # column access on an open row
    rcd: int = 50            # activate (row open)
    precharge: int = 50      # close the previously open row
    bus_cycles: float = 14.0  # data-burst occupancy per 64 B block
    #: Fixed controller/interconnect overhead per request.
    controller: int = 30


@dataclass
class _Bank:
    open_row: int | None = None
    ready_at: float = 0.0


@dataclass
class BankStats:
    requests: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.requests if self.requests else 0.0


class BankedDram:
    """Channel/bank/row-buffer DRAM timing model."""

    def __init__(self, n_channels: int = 2, n_banks: int = 8,
                 row_size_blocks: int = 128,
                 timings: DramTimings | None = None) -> None:
        if n_channels <= 0 or n_banks <= 0 or row_size_blocks <= 0:
            raise ValueError("DRAM geometry values must be positive")
        self.n_channels = n_channels
        self.n_banks = n_banks
        self.row_size_blocks = row_size_blocks
        self.timings = timings if timings is not None else DramTimings()
        self._banks = [[_Bank() for _ in range(n_banks)]
                       for _ in range(n_channels)]
        self._bus_free = [0.0] * n_channels
        self.stats = BankStats()

    # -- address mapping -------------------------------------------------
    def map_address(self, block: int) -> tuple[int, int, int]:
        """(channel, bank, row) for a block address.

        Blocks interleave across channels first (adjacent blocks hit
        different channels), then across banks in row-sized stripes so
        a sequential stream streams within one row before moving on.
        """
        channel = block % self.n_channels
        stripe = block // self.n_channels
        row_index = stripe // self.row_size_blocks
        bank = row_index % self.n_banks
        row = row_index // self.n_banks
        return channel, bank, row

    # -- request timing ----------------------------------------------------
    def access(self, now: float, block: int) -> float:
        """Completion time of a block read issued at ``now``."""
        t = self.timings
        channel, bank_idx, row = self.map_address(block)
        bank = self._banks[channel][bank_idx]
        self.stats.requests += 1

        start = max(now + t.controller, bank.ready_at)
        if bank.open_row == row:
            self.stats.row_hits += 1
            array_done = start + t.cas
        elif bank.open_row is None:
            self.stats.row_misses += 1
            array_done = start + t.rcd + t.cas
        else:
            self.stats.row_conflicts += 1
            array_done = start + t.precharge + t.rcd + t.cas
        bank.open_row = row
        bank.ready_at = array_done

        # The data burst then needs the channel's bus.
        bus_start = max(array_done, self._bus_free[channel])
        self._bus_free[channel] = bus_start + t.bus_cycles
        return bus_start + t.bus_cycles

    def idle_latency(self) -> float:
        """Unloaded row-conflict-free latency (controller+activate+CAS+bus)."""
        t = self.timings
        return t.controller + t.rcd + t.cas + t.bus_cycles

    @classmethod
    def for_config(cls, config: SystemConfig) -> "BankedDram":
        """Geometry matching the paper's two-controller chip, with the
        bus rate derived from the configured peak bandwidth."""
        bus = config.cycles_per_block_transfer * 2  # split over 2 channels
        return cls(n_channels=2, n_banks=8,
                   timings=DramTimings(bus_cycles=bus))
