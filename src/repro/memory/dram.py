"""DRAM latency and shared off-chip bandwidth model.

The paper's chip has two memory controllers delivering up to 37.5 GB/s
shared across four cores, with a 45 ns access delay.  The timing results
(Figs. 14 and 15) depend on two properties of that channel:

* every off-chip transfer — demand fill, prefetch fill, metadata read,
  metadata write — occupies the channel for ``64 B / (bytes/cycle)``;
* when the channel is oversubscribed, requests queue, so latency grows.

:class:`BandwidthLedger` is a single-server queue shared by all cores of
a chip: a request arriving at time ``t`` starts service at
``max(t, channel_free)`` and holds the channel for one block-service
time.  :class:`DramModel` layers the fixed access latency on top and
keeps traffic counters by category for the Fig. 15 decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import BLOCK_SIZE, SystemConfig


@dataclass
class TrafficCounters:
    """Block transfers by category (the Fig. 15 stack)."""

    demand: int = 0
    prefetch_useful: int = 0
    prefetch_useless: int = 0
    metadata_read: int = 0
    metadata_write: int = 0

    @property
    def total(self) -> int:
        return (self.demand + self.prefetch_useful + self.prefetch_useless
                + self.metadata_read + self.metadata_write)

    @property
    def total_bytes(self) -> int:
        return self.total * BLOCK_SIZE

    def merge(self, other: "TrafficCounters") -> None:
        self.demand += other.demand
        self.prefetch_useful += other.prefetch_useful
        self.prefetch_useless += other.prefetch_useless
        self.metadata_read += other.metadata_read
        self.metadata_write += other.metadata_write


class BandwidthLedger:
    """Two-priority queue model of the shared off-chip channel.

    Real memory controllers prioritise demand fetches over prefetch and
    metadata traffic, so a saturating prefetcher degrades its own
    traffic first.  The model approximates that with two views of one
    server: *demand* requests queue only behind other demand requests,
    while *prefetch-class* requests (prefetches, metadata reads/writes)
    queue behind everything.  ``backlog`` exposes how far the channel
    is running ahead of ``now`` so the prefetcher can drop requests
    under saturation instead of queueing unboundedly.
    """

    def __init__(self, cycles_per_block: float) -> None:
        if cycles_per_block <= 0:
            raise ValueError("cycles_per_block must be positive")
        self.cycles_per_block = cycles_per_block
        self._demand_free = 0.0
        self._channel_free = 0.0
        self.transfers = 0
        self.busy_cycles = 0.0

    def request(self, now: float, demand: bool = True) -> float:
        """Schedule one block transfer arriving at ``now``.

        Returns the queueing delay (cycles the request waited before the
        channel picked it up).  The caller adds its own fixed latency.
        """
        if demand:
            start = self._demand_free if self._demand_free > now else now
            self._demand_free = start + self.cycles_per_block
            # Demand occupancy also delays the prefetch class.
            if self._channel_free < self._demand_free:
                self._channel_free = self._demand_free
        else:
            start = self._channel_free if self._channel_free > now else now
            self._channel_free = start + self.cycles_per_block
        self.transfers += 1
        self.busy_cycles += self.cycles_per_block
        return start - now

    def backlog(self, now: float) -> float:
        """Cycles of queued prefetch-class work ahead of ``now``."""
        return max(0.0, self._channel_free - now)

    def utilization(self, elapsed_cycles: float) -> float:
        """Fraction of ``elapsed_cycles`` the channel was busy."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed_cycles)


class DramModel:
    """Latency + bandwidth + per-category traffic accounting."""

    #: Traffic categories accepted by :meth:`access`.
    CATEGORIES = ("demand", "prefetch_useful", "prefetch_useless",
                  "metadata_read", "metadata_write")

    def __init__(self, config: SystemConfig, ledger: BandwidthLedger | None = None) -> None:
        self.config = config
        self.latency = config.memory_latency_cycles
        self.ledger = ledger if ledger is not None else BandwidthLedger(
            config.cycles_per_block_transfer)
        self.traffic = TrafficCounters()

    def access(self, now: float, category: str = "demand") -> float:
        """One block transfer starting at cycle ``now``.

        Returns the completion time: fixed latency plus any queueing
        delay behind earlier transfers on the shared channel.
        """
        if category not in self.CATEGORIES:
            raise ValueError(f"unknown traffic category {category!r}")
        queue_delay = self.ledger.request(now, demand=(category == "demand"))
        setattr(self.traffic, category, getattr(self.traffic, category) + 1)
        return now + queue_delay + self.latency

    def count_only(self, category: str, blocks: int = 1) -> None:
        """Record traffic without timing (used by the trace-driven engine,
        which measures coverage, not cycles)."""
        if category not in self.CATEGORIES:
            raise ValueError(f"unknown traffic category {category!r}")
        setattr(self.traffic, category, getattr(self.traffic, category) + blocks)
