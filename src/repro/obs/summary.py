"""Render a run's telemetry from its JSONL event trace.

``domino-repro obs summary trace.jsonl`` reads the trace written by a
``run --trace-events`` invocation and answers the first three questions
of any slow-or-wrong investigation: *what happened* (event counts per
component), *where did the time go* (per-cell wall/CPU timings, top
slow cells, worker utilization, timing-histogram percentiles), and
*what did the prefetcher see* (EIT lookup outcome counters, engine
trigger/overprediction counts from the metrics snapshot).

Two output shapes over the same aggregation: :func:`render_summary`
builds the human tables, :func:`summary_json` the machine-readable dict
behind ``obs summary --format json`` (what ``scripts/serve_smoke.sh``
and the CI gates consume — grepping the text tables is how smoke
scripts used to rot).

All rendering is pure string/dict building over the parsed events, so
tests can assert on it without a filesystem.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from collections import defaultdict
from typing import Any

from ..stats.tables import format_table
from .registry import Registry

#: Percentile columns of the histogram table.
PERCENTILES = (0.50, 0.90, 0.99)


def event_counts(events: list[dict[str, Any]]) -> list[tuple[str, str, int]]:
    """(component, event, count) triples, most frequent first."""
    tally: TallyCounter = TallyCounter(
        (e.get("component", "?"), e.get("event", "?")) for e in events)
    return [(comp, name, n)
            for (comp, name), n in sorted(tally.items(),
                                          key=lambda kv: (-kv[1], kv[0]))]


def metrics_snapshot(events: list[dict[str, Any]]) -> dict[str, Any] | None:
    """The last embedded registry snapshot, if the trace carries one."""
    for record in reversed(events):
        if record.get("event") == "metrics_snapshot":
            snapshot = record.get("metrics")
            if isinstance(snapshot, dict):
                return snapshot
    return None


def cell_timings(events: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Executed-cell records (label + wall/CPU seconds), slowest first."""
    cells = [e for e in events if e.get("event") == "cell_executed"]
    return sorted(cells, key=lambda e: -float(e.get("wall_s", 0.0)))


def profile_rows(events: list[dict[str, Any]], top: int = 10) -> list[tuple[str, float, int]]:
    """Aggregate per-cell cProfile rows across the run by function."""
    cumtime: defaultdict[str, float] = defaultdict(float)
    calls: defaultdict[str, int] = defaultdict(int)
    for record in events:
        if record.get("event") != "cell_profile":
            continue
        for row in record.get("rows", []):
            cumtime[row["func"]] += float(row.get("cumtime_s", 0.0))
            calls[row["func"]] += int(row.get("ncalls", 0))
    ranked = sorted(cumtime.items(), key=lambda kv: -kv[1])[:top]
    return [(func, t, calls[func]) for func, t in ranked]


def _histogram_table(snapshot: dict[str, Any]) -> str | None:
    dumps = snapshot.get("histograms", {})
    if not dumps:
        return None
    # Rehydrate through the registry so percentile math lives in one place.
    registry = Registry()
    registry.merge_snapshot({"histograms": dumps})
    rows = []
    for name in sorted(dumps):
        hist = registry.histogram(name, tuple(dumps[name]["buckets"]))
        rows.append([name, hist.count, f"{hist.mean:.4f}"]
                    + [f"{hist.percentile(p):.4f}" for p in PERCENTILES]
                    + [f"{hist.max if hist.count else 0.0:.4f}"])
    headers = ["histogram", "n", "mean"] + [f"p{int(p * 100)}" for p in PERCENTILES] + ["max"]
    return format_table(headers, rows, title="timing histograms (seconds)")


def summary_json(events: list[dict[str, Any]], top: int = 10) -> dict[str, Any]:
    """The machine-readable ``obs summary --format json`` document.

    Everything in it is derived from the parsed trace — no registry or
    process state — so the same trace always summarises identically.
    """
    from .trace import read_spans, validate_forest

    counts = event_counts(events)
    cells = cell_timings(events)
    cached = sum(1 for e in events if e.get("event") == "cell_cached")
    run_summary = next((dict(e) for e in reversed(events)
                        if e.get("event") == "run_summary"), None)
    trace_info = next((dict(e) for e in reversed(events)
                       if e.get("event") == "trace_info"), None)
    spans = read_spans(events)
    span_names: TallyCounter = TallyCounter(s.get("name", "?") for s in spans)
    doc: dict[str, Any] = {
        "events": len(events),
        "event_counts": [{"component": c, "event": e, "count": n}
                         for c, e, n in counts],
        "cells": {
            "executed": len(cells),
            "cached": cached,
            "slowest": [{"cell": e.get("cell", "?"),
                         "wall_s": float(e.get("wall_s", 0.0)),
                         "cpu_s": float(e.get("cpu_s", 0.0))}
                        for e in cells[:top]],
        },
        "run_summary": run_summary,
        "trace_info": trace_info,
        "metrics": metrics_snapshot(events),
        "spans": {
            "count": len(spans),
            "traces": len({s.get("trace") for s in spans}),
            "by_name": dict(sorted(span_names.items())),
            "problems": validate_forest(spans),
        },
        "profile": [{"func": func, "cum_s": t, "ncalls": n}
                    for func, t, n in profile_rows(events, top=top)],
    }
    return doc


def render_summary(events: list[dict[str, Any]], top: int = 10) -> str:
    """The full ``obs summary`` report for one parsed trace."""
    if not events:
        return "empty trace: no events"
    parts: list[str] = [f"{len(events)} events"]

    counts = event_counts(events)
    parts.append(format_table(
        ["component", "event", "count"],
        [[c, e, n] for c, e, n in counts[:max(top, 20)]],
        title="event counts"))

    cells = cell_timings(events)
    cached = sum(1 for e in events if e.get("event") == "cell_cached")
    if cells or cached:
        rows = [[e.get("cell", "?"), f"{float(e.get('wall_s', 0.0)):.3f}",
                 f"{float(e.get('cpu_s', 0.0)):.3f}"] for e in cells[:top]]
        parts.append(format_table(
            ["cell", "wall_s", "cpu_s"], rows,
            title=f"top {min(top, len(cells))} slow cells "
                  f"({len(cells)} executed, {cached} cached)"))

    for record in events:
        if record.get("event") == "run_summary":
            parts.append(
                f"[scheduler] jobs={record.get('jobs')} mode={record.get('mode')} "
                f"wall={float(record.get('wall_s', 0.0)):.2f}s "
                f"compute={float(record.get('compute_s', 0.0)):.2f}s "
                f"utilization={float(record.get('utilization', 0.0)):.0%}")

    snapshot = metrics_snapshot(events)
    if snapshot:
        counters = snapshot.get("counters", {})
        if counters:
            parts.append(format_table(
                ["counter", "value"],
                [[name, value] for name, value in sorted(
                    counters.items(), key=lambda kv: (-kv[1], kv[0]))[:max(top, 20)]],
                title="counters"))
        hist_table = _histogram_table(snapshot)
        if hist_table:
            parts.append(hist_table)

    from .trace import read_spans, render_span_tree

    spans = read_spans(events)
    if spans:
        parts.append(render_span_tree(spans, top=3))

    profiled = profile_rows(events, top=top)
    if profiled:
        parts.append(format_table(
            ["function", "cum_s", "ncalls"],
            [[func, f"{t:.3f}", n] for func, t, n in profiled],
            title="profile: top functions by cumulative time"))

    return "\n\n".join(parts)
