"""repro.obs — structured telemetry for the simulator and runner.

The observability backbone of the repo, in three pieces:

* a **metrics registry** (:mod:`repro.obs.registry`) of counters,
  gauges, and fixed-bucket histograms with mergeable percentiles;
* a **structured event trace** (:mod:`repro.obs.events` /
  :mod:`repro.obs.runtime`) — severity levels, per-component
  :class:`Scope` loggers, deterministic sampling, a bounded ring
  buffer, and JSONL serialisation;
* **phase timers and profiling** (:mod:`repro.obs.timers`) — section
  timing histograms and an opt-in per-cell cProfile hook;
* **causal span tracing** (:mod:`repro.obs.trace`) — hierarchical
  timed regions with context-local propagation, cross-process
  re-parenting, Chrome-trace export, and critical-path extraction.

Everything defaults *off*: until :func:`configure` runs, scopes are
disabled and instrumented code pays one global read per guarded event.
Telemetry observes — it never feeds back into simulation state, so
instrumented and uninstrumented runs produce identical results (the
tier-1 suite asserts this).

See ``docs/OBSERVABILITY.md`` for the event taxonomy and metric names.
"""

from .events import (DEBUG, ERROR, INFO, WARNING, EventTrace, level_name,
                     parse_level, read_jsonl, write_jsonl)
from .registry import (TIME_BUCKETS_S, Counter, Gauge, Histogram,
                       NullRegistry, Registry)
from .runtime import (ObsConfig, ObsState, Scope, absorb, base_state, capture,
                      configure, current_config, disable, get_registry,
                      is_enabled, scope, state)
from .summary import render_summary
from .timers import profile_call, timed
from .trace import (Span, SpanSink, chrome_trace, critical_path, current_span,
                    read_spans, render_span_tree, reparent, span,
                    validate_forest)

__all__ = [
    "DEBUG",
    "ERROR",
    "INFO",
    "WARNING",
    "TIME_BUCKETS_S",
    "Counter",
    "EventTrace",
    "Gauge",
    "Histogram",
    "NullRegistry",
    "ObsConfig",
    "ObsState",
    "Registry",
    "Scope",
    "Span",
    "SpanSink",
    "absorb",
    "base_state",
    "capture",
    "chrome_trace",
    "configure",
    "critical_path",
    "current_config",
    "current_span",
    "disable",
    "get_registry",
    "is_enabled",
    "level_name",
    "parse_level",
    "profile_call",
    "read_jsonl",
    "read_spans",
    "render_span_tree",
    "render_summary",
    "reparent",
    "scope",
    "span",
    "state",
    "timed",
    "validate_forest",
    "write_jsonl",
]
