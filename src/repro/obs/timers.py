"""Phase timers and the opt-in cProfile hook.

``with timed("simulate"):`` records one wall-clock (and CPU) sample
into the active registry's ``time.<section>_s`` histograms and, at
debug level, emits a ``section_end`` event.  When telemetry is off the
context manager body runs with nothing but two ``perf_counter`` calls
of overhead — cheap enough to leave in place permanently.

:func:`profile_call` wraps one callable in ``cProfile`` and condenses
the result to its top rows by cumulative time — small, picklable, and
ready to ride back from a worker process inside cell telemetry.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from collections.abc import Callable, Iterator
from typing import Any

from . import names, runtime
from .events import DEBUG


@contextmanager
def timed(section: str, emit: bool = True) -> Iterator[None]:
    """Time a section into ``time.<section>_s`` histograms."""
    st = runtime.state()
    if st is None:
        yield
        return
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    try:
        yield
    finally:
        wall = time.perf_counter() - wall0
        cpu = time.process_time() - cpu0
        st.registry.histogram(f"time.{section}_s").observe(wall)
        st.registry.histogram(f"time.{section}_cpu_s").observe(cpu)
        if emit:
            st.trace.emit("obs.timer", names.EVT_SECTION_END, DEBUG,
                          section=section, wall_s=round(wall, 6),
                          cpu_s=round(cpu, 6))


def profile_call(fn: Callable[..., Any], *args: Any, top: int = 10,
                 **kwargs: Any) -> tuple[Any, list[dict[str, Any]]]:
    """Run ``fn`` under cProfile; returns ``(result, top_rows)``.

    Rows are ``{"func", "ncalls", "tottime_s", "cumtime_s"}`` sorted by
    cumulative time, profiler scaffolding excluded.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    result = profiler.runcall(fn, *args, **kwargs)
    stats = pstats.Stats(profiler)
    rows: list[dict[str, Any]] = []
    entries = sorted(stats.stats.items(),  # type: ignore[attr-defined]
                     key=lambda item: item[1][3], reverse=True)
    for (filename, lineno, funcname), (cc, nc, tottime, cumtime, _callers) in entries:
        if funcname in ("<built-in method builtins.exec>", "runcall"):
            continue
        where = f"{filename.rsplit('/', 1)[-1]}:{lineno}" if lineno else filename
        rows.append({"func": f"{where}:{funcname}", "ncalls": nc,
                     "tottime_s": round(tottime, 6),
                     "cumtime_s": round(cumtime, 6)})
        if len(rows) >= top:
            break
    return result, rows
