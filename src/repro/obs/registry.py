"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Components never allocate metric objects directly — they ask a
:class:`Registry` (usually the process-global one installed by
:func:`repro.obs.configure`) for a named metric, and repeated requests
for the same name return the same object.  Everything is plain Python
ints/floats so a snapshot is JSON-serialisable and snapshots from
worker processes can be merged back into the parent's registry
(:meth:`Registry.merge_snapshot`), which is how per-cell telemetry
survives the ``multiprocessing`` pool boundary.

Histograms use *fixed* bucket upper bounds (Prometheus-style): observe
cost is a bisect plus two adds, memory is constant, and percentiles are
answered from the cumulative bucket counts (reported as the upper bound
of the bucket containing the requested rank — exact enough for "p99
simulate time" questions, and mergeable across processes).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any

#: Default bucket upper bounds for second-valued timings: 100 us .. 100 s,
#: roughly geometric.  The implicit final bucket is +inf.
TIME_BUCKETS_S = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
                  0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
                  25.0, 50.0, 100.0)


@dataclass
class Counter:
    """Monotonically increasing event count."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


@dataclass
class Gauge:
    """Last-written point-in-time value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with mergeable percentile estimates."""

    def __init__(self, name: str, buckets: tuple[float, ...] = TIME_BUCKETS_S) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted, non-empty tuple")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        #: One count per bucket plus a final +inf overflow bucket.
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket holding the ``p``-quantile sample.

        ``p`` is in [0, 1].  Returns 0.0 on an empty histogram; samples
        in the overflow bucket report the observed maximum.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError("percentile rank must be in [0, 1]")
        if not self.count:
            return 0.0
        rank = max(1, int(p * self.count + 0.9999999))
        running = 0
        for i, n in enumerate(self.counts):
            running += n
            if running >= rank:
                if i < len(self.buckets):
                    return self.buckets[i]
                return self.max
        return self.max  # pragma: no cover - unreachable

    def to_dict(self) -> dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class Registry:
    """Named metric store; one per process (or injected for tests)."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: Serialises snapshot/merge (several serve slots may merge
        #: worker snapshots into one shared registry concurrently —
        #: counter += is a read-modify-write and would lose increments
        #: without it).  Individual metric ops stay lock-free: the hot
        #: observe path runs inside a single-owner capture context.
        self._lock = threading.Lock()

    # -- creation-or-lookup ---------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = TIME_BUCKETS_S) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, buckets)
        return metric

    # -- snapshot / merge -----------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-serialisable dump of every metric (thread-safe)."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {n: h.to_dict()
                               for n, h in sorted(self._histograms.items())},
            }

    def merge_snapshot(self, snapshot: dict[str, Any]) -> None:
        """Fold a worker's snapshot into this registry.

        Counters and histogram buckets add; gauges take the incoming
        value (last writer wins).  Histograms merge only when bucket
        layouts agree — a mismatch raises, since silently summing
        misaligned buckets would corrupt percentiles.  Thread-safe, and
        atomic per call: a mismatched histogram is rejected *before*
        any of its buckets are touched, so a failed merge never leaves
        a half-summed histogram behind.
        """
        with self._lock:
            for name, dump in snapshot.get("histograms", {}).items():
                incoming_buckets = tuple(dump["buckets"])
                existing = self._histograms.get(name)
                if existing is not None and existing.buckets != incoming_buckets:
                    raise ValueError(
                        f"histogram {name!r}: bucket layout mismatch on merge")
            for name, value in snapshot.get("counters", {}).items():
                self.counter(name).inc(int(value))
            for name, value in snapshot.get("gauges", {}).items():
                self.gauge(name).set(value)
            for name, dump in snapshot.get("histograms", {}).items():
                hist = self.histogram(name, tuple(dump["buckets"]))
                for i, n in enumerate(dump["counts"]):
                    hist.counts[i] += int(n)
                hist.count += int(dump["count"])
                hist.total += float(dump["total"])
                if dump["count"]:
                    hist.min = min(hist.min, float(dump["min"]))
                    hist.max = max(hist.max, float(dump["max"]))

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


@dataclass
class _NullMetric:
    """Shared do-nothing stand-in handed out while telemetry is off."""

    name: str = "null"
    value: int = 0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_METRIC = _NullMetric()


@dataclass
class NullRegistry:
    """Registry stand-in: every lookup returns the shared null metric."""

    _null: _NullMetric = field(default_factory=lambda: NULL_METRIC)

    def counter(self, name: str) -> _NullMetric:
        return self._null

    def gauge(self, name: str) -> _NullMetric:
        return self._null

    def histogram(self, name: str, buckets: tuple[float, ...] = TIME_BUCKETS_S) -> _NullMetric:
        return self._null

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}
