"""Telemetry state resolution and the component-facing API.

Telemetry is **off by default**: no state is installed, :func:`scope`
hands out scopes whose ``enabled`` is ``False``, and every emit/observe
call returns after one state read — instrumented hot paths cost a
truthiness check when nothing is listening.  The CLI (or a test) turns
it on with :func:`configure` and off with :func:`disable`.

State resolution is two-level:

* a **process-global base state** installed by :func:`configure` — what
  long-lived instrumentation (the CLI run loop, the serve event loop)
  records into; and
* a **context-local capture state** carried in a :mod:`contextvars`
  ``ContextVar``, installed by :class:`capture` and overriding the base
  for exactly the task, thread, or ``asyncio.to_thread`` body that
  entered it.

The context variable is what makes concurrent capture sound: each serve
slot, runner worker, and asyncio task records into its own isolated
buffer, because ``ContextVar.set`` is invisible to every other context
(PR 6's global-swap capture could interleave concurrent cells'
captures; this model cannot).  A plain ``threading.Thread`` starts with
an empty context and falls through to the base state, which is the
correct reading for "not inside any capture".

Instrumented components never hold the state directly; they hold a
:class:`Scope` (cheap, stateless, safe to create at import time) that
re-resolves the state on every call.  That makes configuration order
irrelevant and keeps worker processes correct: the pool entry point
installs the run's :class:`ObsConfig` around each cell via
:class:`capture`, which collects that cell's events, spans, and metric
snapshot for shipping back to the parent (:func:`absorb`).
"""

from __future__ import annotations

import contextvars
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

from .events import DEBUG, ERROR, INFO, WARNING, EventTrace
from .registry import Counter, Histogram, NullRegistry, Registry, _NullMetric

if TYPE_CHECKING:
    from .trace import Span, SpanSink

#: Shared null metric: what disabled scopes hand to metric users.
_NULL_REGISTRY = NullRegistry()


@dataclass(frozen=True)
class ObsConfig:
    """Picklable telemetry settings (travels to worker processes)."""

    level: int = DEBUG          # trace severity threshold
    sample_every: int = 1       # keep every Nth event per (component, event)
    ring: int = 100_000         # max in-memory events per process/cell
    profile: bool = False       # cProfile each runner cell
    profile_top: int = 10       # rows kept per profiled cell
    span_ring: int = 100_000    # max buffered finished spans per state


@dataclass
class ObsState:
    """Live telemetry for one process or capture context: config +
    registry + event ring + span sink."""

    config: ObsConfig
    registry: Registry
    trace: EventTrace
    spans: "SpanSink" = field(default_factory=lambda: _new_span_sink(100_000))


def _new_span_sink(ring: int) -> "SpanSink":
    from .trace import SpanSink

    return SpanSink(ring=ring)


def _new_state(config: ObsConfig) -> ObsState:
    return ObsState(config=config, registry=Registry(),
                    trace=EventTrace(level=config.level,
                                     sample_every=config.sample_every,
                                     ring=config.ring),
                    spans=_new_span_sink(config.span_ring))


#: Process-global base state (None = telemetry off).
_BASE_STATE: ObsState | None = None

#: Context-local capture state; overrides the base when set.
_CONTEXT_STATE: contextvars.ContextVar[ObsState | None] = \
    contextvars.ContextVar("repro_obs_state", default=None)


def configure(config: ObsConfig | None = None, **overrides: Any) -> ObsState:
    """Install (or replace) the process-global base telemetry state."""
    global _BASE_STATE
    cfg = config if config is not None else ObsConfig()
    if overrides:
        cfg = replace(cfg, **overrides)
    _BASE_STATE = _new_state(cfg)
    return _BASE_STATE


def disable() -> None:
    global _BASE_STATE
    _BASE_STATE = None


def is_enabled() -> bool:
    return state() is not None


def state() -> ObsState | None:
    """The active state: this context's capture, else the base."""
    ctx = _CONTEXT_STATE.get()
    return ctx if ctx is not None else _BASE_STATE


def base_state() -> ObsState | None:
    """The process-global state, ignoring any active capture (what the
    CLI serialises at exit)."""
    return _BASE_STATE


def current_config() -> ObsConfig | None:
    st = state()
    return st.config if st is not None else None


def get_registry() -> Registry | NullRegistry:
    """The active registry, or a no-op stand-in when telemetry is off."""
    st = state()
    return st.registry if st is not None else _NULL_REGISTRY


class Scope:
    """Named event emitter bound to a component, not to a state.

    Every call re-resolves the active state, so scopes may be created
    at import time, before :func:`configure`, and stay correct across
    enable/disable cycles, capture contexts, and fork boundaries.
    """

    __slots__ = ("component",)

    def __init__(self, component: str) -> None:
        self.component = component

    @property
    def enabled(self) -> bool:
        return state() is not None

    def enabled_for(self, level: int) -> bool:
        st = state()
        return st is not None and level >= st.trace.level

    def child(self, name: str) -> "Scope":
        return Scope(f"{self.component}.{name}")

    def emit(self, event: str, level: int = INFO, **fields: object) -> None:
        st = state()
        if st is None:
            return
        st.trace.emit(self.component, event, level, **fields)

    def debug(self, event: str, **fields: object) -> None:
        self.emit(event, DEBUG, **fields)

    def info(self, event: str, **fields: object) -> None:
        self.emit(event, INFO, **fields)

    def warning(self, event: str, **fields: object) -> None:
        self.emit(event, WARNING, **fields)

    def error(self, event: str, **fields: object) -> None:
        """Highest severity: survives any --log-level filter, so retry
        exhaustion and cell failures are never sampled out of a trace."""
        self.emit(event, ERROR, **fields)

    def counter(self, name: str) -> Counter | _NullMetric:
        """Registry counter namespaced under this component."""
        st = state()
        if st is None:
            return _NULL_REGISTRY.counter(name)
        return st.registry.counter(f"{self.component}.{name}")

    def histogram(self, name: str, buckets: tuple[float, ...] | None = None,
                  ) -> Histogram | _NullMetric:
        st = state()
        if st is None:
            return _NULL_REGISTRY.histogram(name)
        full = f"{self.component}.{name}"
        if buckets is None:
            return st.registry.histogram(full)
        return st.registry.histogram(full, buckets)


def scope(component: str) -> Scope:
    return Scope(component)


class capture:
    """Collect one unit of work's telemetry under a fresh, isolated state.

    ``with capture(cfg) as cap: ...`` installs a clean
    :class:`ObsState` built from ``cfg`` **in this context only** —
    concurrent tasks, threads, and serve slots keep whatever state they
    were using — runs the body, then exposes ``cap.events`` /
    ``cap.metrics`` / ``cap.spans`` / ``cap.dropped`` and restores the
    context.  Because the override travels with the
    :mod:`contextvars` context, a capture entered before
    ``asyncio.to_thread`` (or inside a pool worker) stays bound to that
    body alone; nested captures stack naturally.  With ``cfg=None`` it
    is a no-op passthrough (telemetry stays exactly as it was).
    """

    def __init__(self, config: ObsConfig | None) -> None:
        self.config = config
        self.events: list[dict[str, Any]] = []
        self.metrics: dict[str, Any] = {}
        self.spans: list[dict[str, Any]] = []
        self.dropped = 0
        self.sampled_out = 0
        self.spans_dropped = 0
        self._token: contextvars.Token[ObsState | None] | None = None
        self._state: ObsState | None = None

    def __enter__(self) -> "capture":
        if self.config is not None:
            self._state = _new_state(self.config)
            self._token = _CONTEXT_STATE.set(self._state)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self.config is not None and self._token is not None:
            st = self._state
            if st is not None:
                self.events = st.trace.drain()
                self.metrics = st.registry.snapshot()
                self.spans = st.spans.drain()
                self.dropped = st.trace.dropped
                self.sampled_out = st.trace.sampled_out
                self.spans_dropped = st.spans.dropped
            _CONTEXT_STATE.reset(self._token)
            self._token = None
            self._state = None


def absorb(events: list[dict[str, Any]], metrics: dict[str, Any] | None = None,
           tag: dict[str, str] | None = None,
           spans: list[dict[str, Any]] | None = None,
           parent: "Span | None" = None) -> None:
    """Fold captured telemetry (e.g. from a worker) into this context.

    ``tag`` fields are stamped onto every absorbed event — the scheduler
    uses it to label engine events with the cell they came from, the
    serve tier with the tenant and job.  ``spans`` are grafted under
    ``parent`` (see :func:`repro.obs.trace.reparent`): shipped roots —
    and spans whose parent was inherited across a fork — join the
    absorbing span's trace, which is how a worker process's span tree
    reattaches to the cell that submitted it.
    """
    st = state()
    if st is None:
        return
    if tag:
        events = [{**record, **tag} for record in events]
    st.trace.extend(events)
    if metrics:
        st.registry.merge_snapshot(metrics)
    if spans:
        from .trace import reparent

        st.spans.extend(reparent(spans, parent))
