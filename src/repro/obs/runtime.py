"""Process-global telemetry state and the component-facing API.

Telemetry is **off by default**: the module-level state is ``None``,
:func:`scope` hands out scopes whose ``enabled`` is ``False``, and every
emit/observe call returns after one global read — instrumented hot paths
cost a truthiness check when nothing is listening.  The CLI (or a test)
turns it on with :func:`configure` and off with :func:`disable`.

Instrumented components never hold the state directly; they hold a
:class:`Scope` (cheap, stateless, safe to create at import time) that
re-reads the global on every call.  That makes configuration order
irrelevant and keeps worker processes correct: the pool entry point
installs the run's :class:`ObsConfig` around each cell via
:class:`capture`, which collects that cell's events and metric snapshot
for shipping back to the parent (:func:`absorb`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from .events import DEBUG, ERROR, INFO, WARNING, EventTrace
from .registry import Counter, Histogram, NullRegistry, Registry, _NullMetric

#: Shared null metric: what disabled scopes hand to metric users.
_NULL_REGISTRY = NullRegistry()


@dataclass(frozen=True)
class ObsConfig:
    """Picklable telemetry settings (travels to worker processes)."""

    level: int = DEBUG          # trace severity threshold
    sample_every: int = 1       # keep every Nth event per (component, event)
    ring: int = 100_000         # max in-memory events per process/cell
    profile: bool = False       # cProfile each runner cell
    profile_top: int = 10       # rows kept per profiled cell


@dataclass
class ObsState:
    """Live telemetry for one process: config + registry + event ring."""

    config: ObsConfig
    registry: Registry
    trace: EventTrace


_STATE: ObsState | None = None


def configure(config: ObsConfig | None = None, **overrides: Any) -> ObsState:
    """Install (or replace) the process-global telemetry state."""
    global _STATE
    cfg = config if config is not None else ObsConfig()
    if overrides:
        cfg = replace(cfg, **overrides)
    _STATE = ObsState(config=cfg, registry=Registry(),
                      trace=EventTrace(level=cfg.level,
                                       sample_every=cfg.sample_every,
                                       ring=cfg.ring))
    return _STATE


def disable() -> None:
    global _STATE
    _STATE = None


def is_enabled() -> bool:
    return _STATE is not None


def state() -> ObsState | None:
    return _STATE


def current_config() -> ObsConfig | None:
    return _STATE.config if _STATE is not None else None


def get_registry() -> Registry | NullRegistry:
    """The active registry, or a no-op stand-in when telemetry is off."""
    return _STATE.registry if _STATE is not None else _NULL_REGISTRY


class Scope:
    """Named event emitter bound to a component, not to a state.

    Every call re-reads the module global, so scopes may be created at
    import time, before :func:`configure`, and stay correct across
    enable/disable cycles and fork boundaries.
    """

    __slots__ = ("component",)

    def __init__(self, component: str) -> None:
        self.component = component

    @property
    def enabled(self) -> bool:
        return _STATE is not None

    def enabled_for(self, level: int) -> bool:
        return _STATE is not None and level >= _STATE.trace.level

    def child(self, name: str) -> "Scope":
        return Scope(f"{self.component}.{name}")

    def emit(self, event: str, level: int = INFO, **fields: object) -> None:
        st = _STATE
        if st is None:
            return
        st.trace.emit(self.component, event, level, **fields)

    def debug(self, event: str, **fields: object) -> None:
        self.emit(event, DEBUG, **fields)

    def info(self, event: str, **fields: object) -> None:
        self.emit(event, INFO, **fields)

    def warning(self, event: str, **fields: object) -> None:
        self.emit(event, WARNING, **fields)

    def error(self, event: str, **fields: object) -> None:
        """Highest severity: survives any --log-level filter, so retry
        exhaustion and cell failures are never sampled out of a trace."""
        self.emit(event, ERROR, **fields)

    def counter(self, name: str) -> Counter | _NullMetric:
        """Registry counter namespaced under this component."""
        st = _STATE
        if st is None:
            return _NULL_REGISTRY.counter(name)
        return st.registry.counter(f"{self.component}.{name}")

    def histogram(self, name: str, buckets: tuple[float, ...] | None = None,
                  ) -> Histogram | _NullMetric:
        st = _STATE
        if st is None:
            return _NULL_REGISTRY.histogram(name)
        full = f"{self.component}.{name}"
        if buckets is None:
            return st.registry.histogram(full)
        return st.registry.histogram(full, buckets)


def scope(component: str) -> Scope:
    return Scope(component)


class capture:
    """Collect one unit of work's telemetry under a fresh state.

    ``with capture(cfg) as cap: ...`` installs a clean
    :class:`ObsState` built from ``cfg`` (shielding whatever state the
    process — or a forked parent — already had), runs the body, then
    exposes ``cap.events`` / ``cap.metrics`` / ``cap.dropped`` and
    restores the previous state.  With ``cfg=None`` it is a no-op
    passthrough (telemetry stays exactly as it was).
    """

    def __init__(self, config: ObsConfig | None) -> None:
        self.config = config
        self.events: list[dict[str, Any]] = []
        self.metrics: dict[str, Any] = {}
        self.dropped = 0
        self.sampled_out = 0
        self._prev: ObsState | None = None

    def __enter__(self) -> "capture":
        global _STATE
        if self.config is not None:
            self._prev = _STATE
            _STATE = ObsState(config=self.config, registry=Registry(),
                              trace=EventTrace(level=self.config.level,
                                               sample_every=self.config.sample_every,
                                               ring=self.config.ring))
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _STATE
        if self.config is not None:
            st = _STATE
            if st is not None:
                self.events = st.trace.drain()
                self.metrics = st.registry.snapshot()
                self.dropped = st.trace.dropped
                self.sampled_out = st.trace.sampled_out
            _STATE = self._prev


def absorb(events: list[dict[str, Any]], metrics: dict[str, Any] | None = None,
           tag: dict[str, str] | None = None) -> None:
    """Fold captured telemetry (e.g. from a worker) into this process.

    ``tag`` fields are stamped onto every absorbed event — the scheduler
    uses it to label engine events with the cell they came from.
    """
    st = _STATE
    if st is None:
        return
    if tag:
        events = [{**record, **tag} for record in events]
    st.trace.extend(events)
    if metrics:
        st.registry.merge_snapshot(metrics)
