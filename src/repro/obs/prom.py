"""Prometheus text exposition of a registry snapshot.

:func:`render_prometheus` turns the JSON snapshot a
:class:`~repro.obs.registry.Registry` produces into the Prometheus
`text exposition format`_ (version 0.0.4) — what a scrape endpoint or
the serve tier's ``metrics`` protocol frame returns.  No client library
and no HTTP server: the renderer is pure string building, the transport
is whoever calls it.

Two invariants, both enforced here rather than at the emit site:

* **Registered names only.**  A metric whose final dotted segment is
  not in :data:`repro.obs.names.METRIC_NAMES` is silently dropped —
  the exposition can never leak an ad-hoc name past the OBS001
  contract, even if one somehow reached a registry snapshot.
* **Tenant names become labels, not metric names.**  Per-tenant
  metrics (``serve.tenant.<tenant>.<metric>``) collapse into one
  metric family with a ``tenant`` label, so a thousand tenants are a
  thousand series of one family instead of a thousand families.

.. _text exposition format:
   https://prometheus.io/docs/instrumenting/exposition_formats/
"""

from __future__ import annotations

import re
from typing import Any

from . import names as obs_names

#: The scrape response content type for this format version.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Prefix of every exported metric family.
_PREFIX = "domino"

#: Dotted prefix of per-tenant metrics; the segment after it is the
#: tenant name, which becomes a label value.
_TENANT_PREFIX = "serve.tenant."

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def _family(dotted: str) -> str:
    """``serve.server.jobs_admitted`` -> ``domino_serve_server_jobs_admitted``."""
    return f"{_PREFIX}_{_INVALID_CHARS.sub('_', dotted)}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value)) if isinstance(value, float) else str(value)


def _split(name: str) -> tuple[str, str, str] | None:
    """``(family_dotted, leaf, tenant)`` for a registered name, else None.

    The leaf (final dotted segment) must be a registered metric name;
    anything else is dropped from the exposition.
    """
    leaf = name.rpartition(".")[2]
    if leaf not in obs_names.METRIC_NAMES:
        return None
    if name.startswith(_TENANT_PREFIX):
        tenant = name[len(_TENANT_PREFIX):].rpartition(".")[0]
        if tenant:
            return f"{_TENANT_PREFIX.rstrip('.')}.{leaf}", leaf, tenant
    return name, leaf, ""


def _series_name(dotted: str, tenant: str) -> str:
    base = _family(dotted)
    if tenant:
        return f'{base}{{tenant="{_escape_label(tenant)}"}}'
    return base


def _bucket_series(dotted: str, tenant: str, le: str) -> str:
    labels = [f'le="{le}"']
    if tenant:
        labels.insert(0, f'tenant="{_escape_label(tenant)}"')
    return f"{_family(dotted)}_bucket{{{','.join(labels)}}}"


def render_prometheus(snapshot: dict[str, Any],
                      extra_gauges: dict[str, float] | None = None) -> str:
    """The exposition document for one registry snapshot.

    ``extra_gauges`` lets a caller add synthesised point-in-time values
    (live queue depth, uptime) that never lived in a registry; they
    pass through the same registered-name filter as everything else.
    Families are emitted sorted, one ``# TYPE`` line each, so the
    output is deterministic and diffable.
    """
    counters: dict[tuple[str, str], float] = {}
    gauges: dict[tuple[str, str], float] = {}
    for name, value in snapshot.get("counters", {}).items():
        parts = _split(name)
        if parts is not None:
            counters[(parts[0], parts[2])] = float(value)
    merged_gauges = dict(snapshot.get("gauges", {}))
    merged_gauges.update(extra_gauges or {})
    for name, value in merged_gauges.items():
        parts = _split(name)
        if parts is not None:
            gauges[(parts[0], parts[2])] = float(value)

    lines: list[str] = []
    for kind, series in (("counter", counters), ("gauge", gauges)):
        by_family: dict[str, list[tuple[str, float]]] = {}
        for (dotted, tenant), value in series.items():
            by_family.setdefault(dotted, []).append((tenant, value))
        for dotted in sorted(by_family):
            lines.append(f"# TYPE {_family(dotted)} {kind}")
            for tenant, value in sorted(by_family[dotted]):
                lines.append(
                    f"{_series_name(dotted, tenant)} {_format_value(value)}")

    by_family_h: dict[str, list[tuple[str, dict[str, Any]]]] = {}
    for name, dump in snapshot.get("histograms", {}).items():
        parts = _split(name)
        if parts is not None:
            by_family_h.setdefault(parts[0], []).append((parts[2], dump))
    for dotted in sorted(by_family_h):
        lines.append(f"# TYPE {_family(dotted)} histogram")
        for tenant, dump in sorted(by_family_h[dotted],
                                   key=lambda item: item[0]):
            cumulative = 0
            for bound, count in zip(dump["buckets"], dump["counts"]):
                cumulative += int(count)
                lines.append(f"{_bucket_series(dotted, tenant, _format_value(float(bound)))}"
                             f" {cumulative}")
            lines.append(f"{_bucket_series(dotted, tenant, '+Inf')}"
                         f" {int(dump['count'])}")
            suffix = f'{{tenant="{_escape_label(tenant)}"}}' if tenant else ""
            lines.append(f"{_family(dotted)}_sum{suffix} "
                         f"{_format_value(float(dump['total']))}")
            lines.append(f"{_family(dotted)}_count{suffix} {int(dump['count'])}")
    return "\n".join(lines) + ("\n" if lines else "")
