"""Causal span tracing: hierarchical timing with context-local capture.

A **span** is one timed region of work — a served job, a scheduled
cell, an engine run — with a causal parent, so a whole request
decomposes into a tree: serve connection → job → cell → simulate.
Spans answer the question flat events cannot: *which* part of *whose*
request the time went to.

Design points, in the order they matter:

* **Context-local, not global.**  The active span lives in a
  :mod:`contextvars` ``ContextVar``, so concurrent asyncio tasks,
  ``asyncio.to_thread`` bodies, and capture contexts each see their own
  span stack.  Two serve slots running cells at the same time can never
  cross-wire their span trees (the PR 6 caveat this module retires).

* **Closed means recorded.**  A span only reaches the sink when its
  ``with`` block exits, carrying both endpoints from the same monotonic
  clock — durations are never negative and never invented.  The
  context-manager form is the only form; rule OBS002 of
  :mod:`repro.analyze` rejects bare ``span(...)`` calls, which is what
  guarantees "started in a function ⇒ closed on all paths".

* **Registered names only.**  Span names come from
  :data:`repro.obs.names.SPAN_NAMES` — same contract as event and
  metric names, same analyzer enforcement, same docs taxonomy.

* **Cross-process re-parenting.**  Worker processes record spans under
  their own ids; :func:`reparent` grafts a shipped forest under the
  submitting span at absorption time (ids are prefixed with the
  originating pid, so grafting never collides).

* **Results stay bit-identical.**  Spans observe; they never feed back.
  The instrumented==uninstrumented regression gate covers spans-on runs
  (``benchmarks/bench_obs.py``, tests/obs).

On-disk form: span records ride the same JSONL trace as events, as
``component="obs.span", event="span"`` records (see
:func:`span_to_record`).  :func:`chrome_trace` converts a parsed forest
to the Chrome ``traceEvents`` JSON that chrome://tracing and Perfetto
load directly; :func:`critical_path` extracts the slowest root→leaf
chain per trace.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any

from ..errors import ObsError
from . import names as obs_names
from . import runtime

#: Span/trace ids are ``<pid-hex>-<counter-hex>``: unique within a
#: process by the counter, across cooperating processes by the pid.
#: (Telemetry ids never feed results, so pid-dependence is fine —
#: and DET001 does not govern obs/.)
_COUNTER = itertools.count(1)
_COUNTER_LOCK = threading.Lock()


def _new_id() -> str:
    with _COUNTER_LOCK:
        n = next(_COUNTER)
    return f"{os.getpid():x}-{n:x}"


@dataclass
class Span:
    """One open (then closed) timed region with a causal parent.

    ``start_s``/``end_s`` are :func:`time.monotonic` readings — on
    Linux a system-wide clock, so spans recorded in forked worker
    processes order correctly against their parents.
    """

    name: str
    span_id: str
    trace_id: str
    parent_id: str | None
    start_s: float
    end_s: float | None = None
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)

    def annotate(self, **attrs: Any) -> None:
        """Attach structured attributes after creation (e.g. a tenant
        name learned mid-connection)."""
        self.attrs.update(attrs)

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s


#: The innermost open span of the current context (task/thread).
_CURRENT: contextvars.ContextVar[Span | None] = contextvars.ContextVar(
    "repro_obs_current_span", default=None)


def current_span() -> Span | None:
    """The innermost open span of this context, or None."""
    return _CURRENT.get()


class SpanSink:
    """Bounded ring of finished span records with drop accounting.

    ``extend`` (the absorption path) may be called from several threads
    of one process — serve slots absorb concurrently — so it locks;
    ``add`` runs on the recording context's own sink and stays
    lock-free.
    """

    def __init__(self, ring: int = 100_000) -> None:
        if ring < 1:
            raise ValueError("ring must be >= 1")
        self.ring = ring
        self._spans: deque[dict[str, Any]] = deque(maxlen=ring)
        self._lock = threading.Lock()
        self.dropped = 0

    def add(self, record: dict[str, Any]) -> None:
        if len(self._spans) == self.ring:
            self.dropped += 1
        self._spans.append(record)

    def extend(self, records: list[dict[str, Any]]) -> None:
        with self._lock:
            for record in records:
                if len(self._spans) == self.ring:
                    self.dropped += 1
                self._spans.append(record)

    def spans(self) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._spans)

    def drain(self) -> list[dict[str, Any]]:
        with self._lock:
            out = list(self._spans)
            self._spans.clear()
            return out

    def __len__(self) -> int:
        return len(self._spans)


def span_to_record(span: Span) -> dict[str, Any]:
    """The JSONL form of one finished span (rides the event trace).

    Deliberately carries no ``level``: spans are structural timing
    records, collected whole or not at all — the ``--log-level`` filter
    that thins leveled events does not apply to them.
    """
    record: dict[str, Any] = {
        "component": "obs.span",
        "event": obs_names.EVT_SPAN, "name": span.name,
        "span": span.span_id, "trace": span.trace_id,
        "parent": span.parent_id, "start_s": round(span.start_s, 9),
        "end_s": round(span.end_s if span.end_s is not None else span.start_s, 9),
        "status": span.status,
    }
    if span.attrs:
        record["attrs"] = span.attrs
    return record


@contextmanager
def span(name: str, parent: Span | None = None,
         **attrs: Any) -> Iterator[Span | None]:
    """Open one span under the current (or an explicit) parent.

    No-op when telemetry is off: yields ``None`` after one state read.
    ``parent`` overrides the context parent — the serve tier uses it to
    hang a job span off the connection span that admitted it, which
    lives in a different asyncio task.

    The span is recorded into the **active state's** span sink on exit
    (capture contexts therefore collect their own spans), with
    ``status="error"`` when the body raised.
    """
    st = runtime.state()
    if st is None:
        yield None
        return
    if name not in obs_names.SPAN_NAMES:
        raise ObsError(f"span name {name!r} is not registered in "
                       "repro.obs.names (SPAN_* constants)")
    if parent is None:
        parent = _CURRENT.get()
    sp = Span(name=name, span_id=_new_id(),
              trace_id=parent.trace_id if parent is not None else _new_id(),
              parent_id=parent.span_id if parent is not None else None,
              start_s=time.monotonic(), attrs=dict(attrs))
    token = _CURRENT.set(sp)
    try:
        yield sp
    except BaseException:
        sp.status = "error"
        raise
    finally:
        sp.end_s = time.monotonic()
        _CURRENT.reset(token)
        # Record into whatever state is active *now* — a capture opened
        # inside the span body has been unwound by its own __exit__.
        active = runtime.state()
        if active is not None:
            active.spans.add(span_to_record(sp))


def reparent(records: list[dict[str, Any]],
             parent: Span | None) -> list[dict[str, Any]]:
    """Graft a shipped span forest under ``parent``.

    Every record joins the parent's trace; records whose parent id is
    not itself in the shipped set (worker-side roots, or spans whose
    parent was inherited across a fork) are re-pointed at the parent
    span.  With ``parent=None`` the records pass through untouched.
    """
    if parent is None or not records:
        return records
    shipped = {r.get("span") for r in records}
    out = []
    for record in records:
        record = dict(record)
        record["trace"] = parent.trace_id
        if record.get("parent") not in shipped:
            record["parent"] = parent.span_id
        out.append(record)
    return out


# ---------------------------------------------------------------------------
# parsed-trace utilities (obs spans, CI gates, tests)


def read_spans(events: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Extract span records from a parsed JSONL trace."""
    return [e for e in events if e.get("event") == obs_names.EVT_SPAN
            and e.get("component") == "obs.span"]


def validate_forest(records: list[dict[str, Any]]) -> list[str]:
    """Well-formedness problems of a span forest (empty list = sound).

    Checks: unique span ids, resolvable parents (every non-root parent
    id present in the forest), parent/child trace agreement, exactly
    one root per trace id, and non-negative durations.
    """
    problems: list[str] = []
    by_id: dict[str, dict[str, Any]] = {}
    for record in records:
        span_id = record.get("span")
        if not isinstance(span_id, str) or not span_id:
            problems.append(f"span record without an id: {record.get('name')}")
            continue
        if span_id in by_id:
            problems.append(f"duplicate span id {span_id}")
        by_id[span_id] = record
    roots_per_trace: dict[str, int] = {}
    for span_id, record in by_id.items():
        parent = record.get("parent")
        trace_id = record.get("trace")
        if parent is None:
            roots_per_trace[trace_id] = roots_per_trace.get(trace_id, 0) + 1
        elif parent not in by_id:
            problems.append(
                f"orphan span {record.get('name')}({span_id}): "
                f"parent {parent} not in forest")
        elif by_id[parent].get("trace") != trace_id:
            problems.append(
                f"span {record.get('name')}({span_id}) crosses traces: "
                f"{trace_id} vs parent's {by_id[parent].get('trace')}")
        start = float(record.get("start_s", 0.0))
        end = float(record.get("end_s", start))
        if end < start:
            problems.append(
                f"span {record.get('name')}({span_id}) has negative "
                f"duration {end - start:.9f}s")
    for trace_id, n_roots in sorted(roots_per_trace.items()):
        if n_roots != 1:
            problems.append(f"trace {trace_id} has {n_roots} roots "
                            "(expected exactly one)")
    for trace_id in {r.get("trace") for r in by_id.values()}:
        if trace_id not in roots_per_trace:
            problems.append(f"trace {trace_id} has no root span")
    return problems


def _children_index(records: list[dict[str, Any]],
                    ) -> dict[str | None, list[dict[str, Any]]]:
    children: dict[str | None, list[dict[str, Any]]] = {}
    for record in records:
        children.setdefault(record.get("parent"), []).append(record)
    for bucket in children.values():
        bucket.sort(key=lambda r: float(r.get("start_s", 0.0)))
    return children


def _duration(record: dict[str, Any]) -> float:
    return (float(record.get("end_s", 0.0))
            - float(record.get("start_s", 0.0)))


def critical_path(records: list[dict[str, Any]],
                  ) -> list[list[dict[str, Any]]]:
    """The slowest root→leaf chain of every trace, slowest trace first.

    Descends from each root through its longest-duration child; the
    result chains are the spans an optimisation effort should look at
    first.  Each returned chain is root-first.
    """
    by_id = {r.get("span"): r for r in records}
    children = _children_index(records)
    roots = [r for r in records
             if r.get("parent") is None or r.get("parent") not in by_id]
    chains: list[list[dict[str, Any]]] = []
    for root in roots:
        chain = [root]
        node = root
        while True:
            kids = children.get(node.get("span"), [])
            if not kids:
                break
            node = max(kids, key=_duration)
            chain.append(node)
        chains.append(chain)
    chains.sort(key=lambda c: -_duration(c[0]))
    return chains


def chrome_trace(records: list[dict[str, Any]]) -> dict[str, Any]:
    """Convert a span forest to Chrome ``traceEvents`` JSON.

    Loadable as-is by chrome://tracing and https://ui.perfetto.dev —
    each trace id becomes one "thread" row, spans become complete
    (``ph="X"``) events with microsecond timestamps, and span
    attributes ride in ``args``.
    """
    trace_rows: dict[str, int] = {}
    events: list[dict[str, Any]] = []
    for record in sorted(records, key=lambda r: float(r.get("start_s", 0.0))):
        trace_id = str(record.get("trace"))
        tid = trace_rows.setdefault(trace_id, len(trace_rows) + 1)
        args = dict(record.get("attrs") or {})
        args["span"] = record.get("span")
        args["trace"] = trace_id
        if record.get("status") != "ok":
            args["status"] = record.get("status")
        events.append({
            "name": record.get("name", "?"),
            "cat": "repro",
            "ph": "X",
            "pid": 1,
            "tid": tid,
            "ts": round(float(record.get("start_s", 0.0)) * 1e6, 3),
            "dur": round(max(_duration(record), 0.0) * 1e6, 3),
            "args": args,
        })
    thread_names = [
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
         "args": {"name": f"trace {trace_id}"}}
        for trace_id, tid in trace_rows.items()]
    return {"traceEvents": thread_names + events,
            "displayTimeUnit": "ms"}


def render_span_tree(records: list[dict[str, Any]], top: int = 20) -> str:
    """A plain-text span forest: indentation is causality, slowest
    traces first; ``top`` bounds the rendered traces."""
    if not records:
        return "no spans in trace"
    children = _children_index(records)
    by_id = {r.get("span"): r for r in records}
    roots = sorted((r for r in records
                    if r.get("parent") is None or r.get("parent") not in by_id),
                   key=_duration, reverse=True)
    lines: list[str] = [f"{len(records)} spans, {len(roots)} trace(s)"]

    def _render(record: dict[str, Any], depth: int) -> None:
        attrs = record.get("attrs") or {}
        attr_text = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        flag = "" if record.get("status") == "ok" else f" [{record.get('status')}]"
        lines.append(f"{'  ' * depth}{record.get('name')}  "
                     f"{_duration(record) * 1e3:9.3f} ms{flag}"
                     + (f"  {attr_text}" if attr_text else ""))
        for child in children.get(record.get("span"), []):
            _render(child, depth + 1)

    for root in roots[:top]:
        _render(root, 0)
    if len(roots) > top:
        lines.append(f"... {len(roots) - top} more trace(s)")
    return "\n".join(lines)
