"""Central registry of event, metric, and span names used at emit sites.

Every event name passed to a :class:`repro.obs.Scope` emitter
(``.debug``/``.info``/``.warning``/``.error``/``.emit``), every
counter/histogram name passed to ``Scope.counter``/``Scope.histogram``,
and every span name passed to :func:`repro.obs.trace.span` must come
from this module.  That keeps three things from drifting apart: the
emit sites themselves, the ``obs summary``/``obs spans`` renderers that
group and explain records, and the taxonomy tables in
``docs/OBSERVABILITY.md``.

The invariant is machine-enforced: rule **OBS001** of
:mod:`repro.analyze` rejects any emit site whose name is not a string
constant defined here (either the literal value or a ``names.X``
reference), and rule **OBS002** does the same for ``span(...)`` sites
(additionally requiring the context-manager form, so every started
span is closed on all paths).  Adding a new event is therefore a
two-line change — define the constant here, use it at the emit site —
and the analyzer, the summary tool, and the docs all agree by
construction.

Constants are grouped by the component scope that emits them.  The
``EVENT_NAMES`` / ``METRIC_NAMES`` / ``SPAN_NAMES`` frozensets at the
bottom are derived from the constants and are what OBS001/OBS002
validate against.
"""

from __future__ import annotations

# -- sim.engine events ------------------------------------------------------
EVT_TRIGGER = "trigger"                    # one triggering event (miss or prefetch hit)
EVT_PREFETCH = "prefetch"                  # one candidate inserted into the buffer
EVT_EVICTION = "eviction"                  # used block evicted from the buffer
EVT_OVERPREDICTION = "overprediction"      # unused block evicted from the buffer
EVT_RUN_COMPLETE = "run_complete"          # one trace-driven simulation finished

# -- sim.fastpath / runner.fastpath events ----------------------------------
EVT_FASTPATH_BUILD = "fastpath_build"            # one-pass L1 filter computed
EVT_FASTPATH_FILTER_HIT = "fastpath_filter_hit"  # filter served from memo/store
EVT_FASTPATH_FILTER_REJECTED = "fastpath_filter_rejected"  # bad artifact quarantined
EVT_FASTPATH_JIT_FALLBACK = "fastpath_jit_fallback"  # numba absent; vectorised used

# -- runner.shm events -------------------------------------------------------
EVT_TRACE_SHM_PUBLISHED = "trace_shm_published"  # traces exported to shared memory
EVT_TRACE_SHM_REAPED = "trace_shm_reaped"        # stale segments of dead runs removed

# -- core.domino / core.eit events ------------------------------------------
EVT_EIT_LOOKUP = "eit_lookup"              # one- or two-address EIT lookup outcome
EVT_REPLACEMENT = "replacement"            # EIT super-entry/entry eviction

# -- runner.scheduler events ------------------------------------------------
EVT_CELL_CACHED = "cell_cached"            # cache hit served from the store
EVT_CELL_EXECUTED = "cell_executed"        # cell computed (wall/CPU attached)
EVT_CELL_PROFILE = "cell_profile"          # per-cell cProfile rows
EVT_CELL_RETRY = "cell_retry"              # failed attempt, retry scheduled
EVT_CELL_TIMEOUT = "cell_timeout"          # attempt exceeded the wall-clock budget
EVT_CELL_FAILED = "cell_failed"            # retry budget exhausted
EVT_POOL_START = "pool_start"              # worker pool spun up
EVT_POOL_REBUILD = "pool_rebuild"          # pool torn down after a hung cell
EVT_RUN_RESUMED = "run_resumed"            # checkpoint journal loaded
EVT_CHECKPOINT_SKIP = "checkpoint_skip"    # journaled cell served from the store
EVT_CHECKPOINT_MISSING_ARTIFACT = "checkpoint_missing_artifact"
EVT_FAULT_CORRUPT_ARTIFACT = "fault_corrupt_artifact"  # chaos harness clobbered a put
EVT_RUN_SUMMARY = "run_summary"            # end-of-run scheduler accounting

# -- runner.store events ----------------------------------------------------
EVT_ARTIFACT_QUARANTINED = "artifact_quarantined"  # corrupt artifact moved aside
EVT_LOCK_BROKEN = "lock_broken"            # stale/dead-holder maintenance lock removed

# -- serve.server / serve.scheduler events ----------------------------------
EVT_SERVER_START = "server_start"          # listener bound, workers running
EVT_SERVER_STOP = "server_stop"            # drained and closed
EVT_CLIENT_CONNECT = "client_connect"      # handshake accepted
EVT_CLIENT_DISCONNECT = "client_disconnect"  # connection closed (either side)
EVT_REQUEST_MALFORMED = "request_malformed"  # undecodable/invalid client message
EVT_JOB_ADMITTED = "job_admitted"          # job queued for a tenant
EVT_JOB_SHED = "job_shed"                  # admission refused (retry-after sent)
EVT_JOB_STARTED = "job_started"            # worker slot picked the job up
EVT_JOB_COMPLETED = "job_completed"        # all cells served back
EVT_JOB_FAILED = "job_failed"              # a cell failed after retries
EVT_JOB_CANCELLED = "job_cancelled"        # terminal cancel/deadline/quota/shutdown
EVT_NET_FAULT = "net_fault_injected"       # chaos harness hit the read/write boundary

# -- cli.run events ---------------------------------------------------------
EVT_EXPERIMENT_START = "experiment_start"
EVT_EXPERIMENT_END = "experiment_end"
EVT_MANIFEST = "manifest"                  # run manifest embedded in the trace

# -- obs-internal events (written by the framework, not via a Scope) --------
EVT_SECTION_END = "section_end"            # obs.timed() debug record
EVT_TRACE_INFO = "trace_info"              # trailer: event/drop accounting
EVT_METRICS_SNAPSHOT = "metrics_snapshot"  # trailer: embedded registry snapshot
EVT_SPAN = "span"                          # one finished causal span record

# -- sim.engine counters ----------------------------------------------------
MET_TRIGGER_MISS = "trigger_miss"
MET_TRIGGER_PREFETCH_HIT = "trigger_prefetch_hit"
MET_PREFETCH_ISSUED = "prefetch_issued"
MET_EVICTION_USED = "eviction_used"
MET_OVERPREDICTION = "overprediction"

# -- sim.fastpath / runner.fastpath counters --------------------------------
MET_FASTPATH_BUILDS = "fastpath_builds"          # filters built from a trace
MET_FASTPATH_REPLAYS = "fastpath_replays"        # engine runs served by replay
MET_FASTPATH_MEMO_HITS = "fastpath_memo_hits"    # filters reused in-process
MET_FASTPATH_STORE_HITS = "fastpath_store_hits"  # filters loaded from the store
MET_FASTPATH_JIT_FALLBACKS = "fastpath_jit_fallbacks"  # jit requested, unavailable

# -- runner.shm counters -----------------------------------------------------
MET_TRACE_SHM_SEGMENTS = "trace_shm_segments"    # segments published per run
MET_TRACE_SHM_ATTACHES = "trace_shm_attaches"    # worker attaches served zero-copy

# -- core.domino counters ---------------------------------------------------
MET_EIT_ONE_ADDR_HIT = "eit_one_addr_hit"
MET_EIT_ONE_ADDR_MISS = "eit_one_addr_miss"
MET_EIT_TWO_ADDR_MATCH = "eit_two_addr_match"
MET_EIT_TWO_ADDR_DISCARD = "eit_two_addr_discard"

# -- core.eit counters ------------------------------------------------------
MET_SUPER_ENTRY_EVICTIONS = "super_entry_evictions"
MET_ENTRY_EVICTIONS = "entry_evictions"

# -- runner.store counters --------------------------------------------------
MET_LOCK_WAITS = "lock_waits"              # acquire() found the lock held
MET_LOCK_BREAKS = "lock_breaks"            # stale/dead-holder lock removed

# -- serve.server / serve.scheduler / serve.tenant.* metrics ----------------
MET_JOBS_ADMITTED = "jobs_admitted"
MET_JOBS_SHED = "jobs_shed"
MET_JOBS_COMPLETED = "jobs_completed"
MET_JOBS_FAILED = "jobs_failed"
MET_JOBS_CANCELLED = "jobs_cancelled"      # client cancel / disconnect / shutdown
MET_JOBS_DEADLINE_EXCEEDED = "jobs_deadline_exceeded"
MET_JOBS_QUOTA_EXHAUSTED = "jobs_quota_exhausted"  # sheds + mid-run quota cancels
MET_REQUESTS_MALFORMED = "requests_malformed"
MET_NET_FAULTS = "net_faults_injected"     # chaos write/read boundary hits
MET_ACCESSES_CHARGED = "accesses_charged"  # simulated accesses billed to quotas
MET_QUEUE_DEPTH = "queue_depth"            # histogram, sampled per admission decision
MET_JOB_WAIT_S = "job_wait_s"              # histogram, admission -> worker pickup
MET_JOB_SERVICE_S = "job_service_s"        # histogram, worker pickup -> served
MET_CANCEL_LATENCY_S = "cancel_latency_s"  # histogram, cancel request -> work stopped

# -- serve live stats plane (gauges synthesised per stats/metrics frame) ----
MET_QUEUE_DEPTH_NOW = "queue_depth_now"    # gauge, point-in-time queued jobs
MET_IN_FLIGHT_NOW = "in_flight_now"        # gauge, point-in-time running jobs
MET_TENANT_VTIME = "vtime"                 # gauge, per-tenant WFQ virtual time
MET_UPTIME_S = "uptime_s"                  # gauge, seconds since server start

# -- spans (causal timing tree; validated by OBS002) ------------------------
# Names are "<layer>.<region>"; the tree a traced request produces is
#   serve.connection > serve.job > serve.cell > runner.run > runner.cell
#   > sim.simulate / fastpath.build, and a batch run's is
#   cli.experiment > runner.run > runner.cell > ... (same tail).
SPAN_EXPERIMENT = "cli.experiment"         # one CLI experiment invocation
SPAN_RUN_CELLS = "runner.run"              # one run_cells() call
SPAN_CELL = "runner.cell"                  # one cell execution (worker root)
SPAN_SIMULATE = "sim.simulate"             # one engine run (full or replay)
SPAN_FASTPATH_BUILD = "fastpath.build"     # one L1 filter build
SPAN_CONNECTION = "serve.connection"       # one client connection lifetime
SPAN_JOB = "serve.job"                     # one admitted job, pickup -> done
SPAN_SERVE_CELL = "serve.cell"             # one served cell inside a job
SPAN_WATCHDOG = "serve.watchdog"           # one job's lifecycle watchdog


def _collect(prefix: str) -> frozenset[str]:
    return frozenset(value for name, value in globals().items()
                     if name.startswith(prefix) and isinstance(value, str))


#: Every event name an emit site may use (validated by OBS001).
EVENT_NAMES = _collect("EVT_")

#: Every counter/histogram name an emit site may use (validated by OBS001).
METRIC_NAMES = _collect("MET_")

#: Every span name a ``with span(...)`` site may use (validated by OBS002).
SPAN_NAMES = _collect("SPAN_")
