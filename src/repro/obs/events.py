"""Structured event records: severity levels, ring buffer, JSONL I/O.

An :class:`EventTrace` is an in-memory sink of dict-shaped events.
Collection stays in memory (a bounded ring) so emitting from the
simulator's hot paths costs a dict build and a deque append — no I/O —
and worker processes can ship their events back to the parent, which
serialises everything to one JSONL file at the end of the run
(:func:`write_jsonl`).

Volume control, both deterministic:

* **sampling** — keep every ``sample_every``-th event per
  ``(component, event)`` pair, starting with the first, so a 100x
  thinned trace of the same run always contains the same records;
* **ring buffer** — a ``deque(maxlen=ring)`` keeps the most recent
  events and counts what it dropped, so full-fidelity traces of
  million-access runs stay bounded.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Any

DEBUG, INFO, WARNING, ERROR = 10, 20, 30, 40

_LEVEL_NAMES = {DEBUG: "debug", INFO: "info", WARNING: "warning", ERROR: "error"}
_NAME_LEVELS = {name: level for level, name in _LEVEL_NAMES.items()}


def level_name(level: int) -> str:
    return _LEVEL_NAMES.get(level, str(level))


def parse_level(name: str | int) -> int:
    """Accepts 'debug'/'info'/'warning'/'error' or a numeric level."""
    if isinstance(name, int):
        return name
    try:
        return _NAME_LEVELS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {name!r}; "
            f"known: {', '.join(_NAME_LEVELS)}") from None


class EventTrace:
    """Bounded in-memory sink of structured events."""

    def __init__(self, level: int = DEBUG, sample_every: int = 1,
                 ring: int = 100_000) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if ring < 1:
            raise ValueError("ring must be >= 1")
        self.level = level
        self.sample_every = sample_every
        self.ring = ring
        self._events: deque[dict[str, Any]] = deque(maxlen=ring)
        self._seen: dict[tuple[str, str], int] = {}
        self._seq = 0
        #: Serialises the absorption paths (:meth:`extend` / :meth:`drain`)
        #: — several serve slots may fold worker telemetry into one shared
        #: trace concurrently.  :meth:`emit` stays lock-free: the hot
        #: emit path always runs inside the single-owner context (a
        #: capture or the configuring thread).
        self._lock = threading.Lock()
        #: Events evicted by the ring (oldest-first) — distinct from
        #: events thinned by sampling, which were never materialised.
        self.dropped = 0
        self.sampled_out = 0

    def emit(self, component: str, event: str, level: int = INFO,
             **fields: object) -> None:
        if level < self.level:
            return
        key = (component, event)
        seen = self._seen.get(key, 0)
        self._seen[key] = seen + 1
        if seen % self.sample_every:
            self.sampled_out += 1
            return
        if len(self._events) == self.ring:
            self.dropped += 1
        record = {"seq": self._seq, "level": level_name(level),
                  "component": component, "event": event}
        record.update(fields)
        self._seq += 1
        self._events.append(record)

    def extend(self, records: list[dict[str, Any]]) -> None:
        """Absorb already-formed records (e.g. shipped from a worker).

        Thread-safe: drop accounting under concurrent absorbers is
        exact (see the lock note in ``__init__``).
        """
        with self._lock:
            for record in records:
                if len(self._events) == self.ring:
                    self.dropped += 1
                self._events.append(record)

    def events(self) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._events)

    def drain(self) -> list[dict[str, Any]]:
        with self._lock:
            out = list(self._events)
            self._events.clear()
            return out

    def __len__(self) -> int:
        return len(self._events)


def write_jsonl(path: str | Path, events: list[dict[str, Any]]) -> int:
    """Write events one-JSON-object-per-line; returns the line count."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for record in events:
            fh.write(json.dumps(record, separators=(",", ":"),
                                sort_keys=False, default=str))
            fh.write("\n")
    return len(events)


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL trace; malformed lines raise with their number."""
    events: list[dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed JSONL line: {exc}") from None
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{lineno}: expected a JSON object per line, "
                    f"got {type(record).__name__}")
            events.append(record)
    return events
