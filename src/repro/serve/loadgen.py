"""Seeded multi-tenant load generator for the experiment server.

Each simulated tenant is an open-loop Poisson source: arrival times are
drawn from a per-tenant ``random.Random`` seeded from ``(seed,
tenant)``, so the *offered* load — who submits what, when, and which
chaos behaviours fire — is bit-reproducible across runs.  What the
server *does* with that load (admission decisions, fairness, latency)
is the measurement.

Every arrival opens its own connection, submits one job, and drains the
reply stream; jobs from the same tenant overlap when arrivals outpace
service, which is exactly how the admission bounds get exercised.  A
:class:`~repro.faults.FaultPlan` with serve-tier probabilities turns a
fraction of arrivals into misbehaving clients (malformed frame first,
vanish after acceptance, stall before draining) — the chaos tests use
this to prove one bad tenant cannot stall or starve the rest.

The output is a BENCH-style JSON report: throughput, latency
percentiles, shed rate, and the Jain fairness index over per-tenant
completions — consumed by ``benchmarks/bench_serve.py`` and the CI
serve-smoke job, which gate on it.
"""

from __future__ import annotations

import asyncio
import contextlib
import random
import time
from dataclasses import dataclass, field
from typing import Any

from ..errors import ProtocolError
from ..faults import FaultPlan, stable_fraction
from . import protocol
from .client import JobResult, ServeClient

#: Default job: the smallest spec admission allows — service time is
#: dominated by a real (tiny) simulation, not by protocol overhead.
DEFAULT_SPEC: dict[str, Any] = {
    "workload": "sat_solver",
    "prefetcher": "domino",
    "kind": "trace",
    "degrees": [1],
    "n_accesses": 1_000,
}


def jain_index(values: list[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly even, 1/n = one hog."""
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(values) * squares)


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of unsorted ``values``."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


@dataclass(frozen=True)
class LoadGenConfig:
    """One load-generation scenario (fully determined by its fields)."""

    address: str
    tenants: int = 4
    jobs_per_tenant: int = 8
    #: Per-tenant Poisson arrival rate (jobs/second).
    rate_hz: float = 2.0
    spec: dict[str, Any] = field(default_factory=lambda: dict(DEFAULT_SPEC))
    #: Give every job a distinct spec seed so service time is real work,
    #: not a cache hit on the first job's artifact.
    vary_seed: bool = True
    seed: int = 1234
    tenant_prefix: str = "t"
    faults: FaultPlan = field(default_factory=FaultPlan)
    #: Client-side guard: a job stuck longer than this counts as error.
    job_timeout_s: float = 120.0
    #: Fraction of accepted jobs the client cancels mid-stream
    #: (seed-deterministic pick, like the fault rolls).
    cancel_p: float = 0.0
    #: How long a cancelling client lets the job run before the cancel
    #: frame goes out.
    cancel_after_s: float = 0.05
    #: Fraction of jobs submitted with a server-side deadline attached.
    deadline_p: float = 0.0
    deadline_s: float = 0.05

    def __post_init__(self) -> None:
        if self.tenants < 1 or self.jobs_per_tenant < 1:
            raise ProtocolError("loadgen needs >= 1 tenant and >= 1 job each")
        if self.rate_hz <= 0:
            raise ProtocolError("loadgen rate_hz must be > 0")
        for name in ("cancel_p", "deadline_p"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ProtocolError(f"loadgen {name} must be in [0, 1]")
        if self.cancel_after_s < 0 or self.deadline_s <= 0:
            raise ProtocolError(
                "loadgen cancel_after_s must be >= 0 and deadline_s > 0")

    def should_cancel(self, tenant: str, job_index: int) -> bool:
        return stable_fraction("loadgen-cancel", self.seed, tenant,
                               job_index) < self.cancel_p

    def should_deadline(self, tenant: str, job_index: int) -> bool:
        return stable_fraction("loadgen-deadline", self.seed, tenant,
                               job_index) < self.deadline_p

    def tenant_names(self) -> list[str]:
        return [f"{self.tenant_prefix}{i}" for i in range(self.tenants)]

    def job_spec(self, tenant_index: int, job_index: int) -> dict[str, Any]:
        spec = dict(self.spec)
        if self.vary_seed:
            base = int(spec.get("seed", 1234))
            spec["seed"] = (base + tenant_index * self.jobs_per_tenant
                            + job_index) % 2**32
        return spec


async def _one_job(config: LoadGenConfig, tenant: str, tenant_index: int,
                   job_index: int, records: list[dict[str, Any]]) -> None:
    """One arrival: connect, (mis)behave, submit, drain, record."""
    faults = config.faults
    record: dict[str, Any] = {"tenant": tenant, "index": job_index,
                              "status": "error", "latency_s": 0.0,
                              "retry_after_s": 0.0, "reason": ""}
    records.append(record)
    started = time.perf_counter()
    request_id = f"{tenant}-{job_index}"
    try:
        client = await ServeClient.connect(config.address, tenant)
    except (ProtocolError, OSError) as exc:
        record["reason"] = f"connect: {exc}"
        return
    try:
        if faults.should_malform(tenant, job_index):
            record["malformed_sent"] = True
            await client.send_raw(b"{this is not a frame\n")
            reply = await client.recv()  # the server's error frame
            if reply["type"] != protocol.ERROR:
                record["reason"] = "no error reply to malformed frame"
                return
        if faults.should_disconnect(tenant, job_index):
            await client.submit(config.job_spec(tenant_index, job_index),
                                request_id)
            reply = await client.recv()
            record["status"] = ("abandoned"
                                if reply["type"] == protocol.ACCEPTED
                                else "shed")
            await client.close(polite=False)
            return
        deadline_s = (config.deadline_s
                      if config.should_deadline(tenant, job_index) else None)
        if deadline_s is not None:
            record["deadline_sent"] = True
        await client.submit(config.job_spec(tenant_index, job_index),
                            request_id, deadline_s=deadline_s)
        if faults.should_slow_client(tenant, job_index):
            record["slow"] = True
            await asyncio.sleep(faults.slow_client_s)
        if config.should_cancel(tenant, job_index):
            result = await _collect_with_cancel(client, config, record,
                                                request_id)
        else:
            result = await client.collect(request_id)
        record["status"] = result.status
        record["reason"] = result.reason
        record["retry_after_s"] = result.retry_after_s
        record["latency_s"] = time.perf_counter() - started
    except (ProtocolError, OSError) as exc:
        record["reason"] = str(exc)
    finally:
        await client.close()


async def _collect_with_cancel(client: ServeClient, config: LoadGenConfig,
                               record: dict[str, Any],
                               request_id: str) -> JobResult:
    """Drain an accepted job while a sibling task cancels it mid-stream."""
    reply = await client.recv()
    kind = reply["type"]
    if kind == protocol.SHED:
        return JobResult(request_id=request_id, accepted=False, status="shed",
                         reason=str(reply.get("reason", "")),
                         retry_after_s=float(reply.get("retry_after_s", 0.0)))
    if kind != protocol.ACCEPTED:
        return JobResult(request_id=request_id, accepted=False, status="error",
                         reason=str(reply.get("error",
                                              f"unexpected reply {kind!r}")))
    record["cancel_sent"] = True
    job_id = str(reply.get("job", ""))

    async def _cancel_later() -> None:
        await asyncio.sleep(config.cancel_after_s)
        with contextlib.suppress(ProtocolError, OSError):
            await client.cancel(job_id)

    canceller = asyncio.create_task(_cancel_later(),
                                    name=f"loadgen-cancel-{job_id}")
    try:
        return await client.stream(request_id, job_id)
    finally:
        canceller.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await canceller


async def _tenant_source(config: LoadGenConfig, tenant_index: int,
                         records: list[dict[str, Any]],
                         jobs: list[asyncio.Task[None]]) -> None:
    """Open-loop arrivals: sleep a Poisson gap, fire, never wait."""
    tenant = config.tenant_names()[tenant_index]
    rng = random.Random(f"{config.seed}:{tenant}")
    for job_index in range(config.jobs_per_tenant):
        await asyncio.sleep(rng.expovariate(config.rate_hz))
        jobs.append(asyncio.create_task(
            asyncio.wait_for(
                _one_job(config, tenant, tenant_index, job_index, records),
                timeout=config.job_timeout_s),
            name=f"loadgen-{tenant}-{job_index}"))


async def run_loadgen_async(config: LoadGenConfig) -> dict[str, Any]:
    """Drive the scenario and aggregate the BENCH report."""
    records: list[dict[str, Any]] = []
    jobs: list[asyncio.Task[None]] = []
    started = time.perf_counter()
    sources = [asyncio.create_task(
        _tenant_source(config, i, records, jobs),
        name=f"loadgen-source-{i}") for i in range(config.tenants)]
    await asyncio.gather(*sources)
    results = await asyncio.gather(*jobs, return_exceptions=True)
    wall_s = time.perf_counter() - started
    timeouts = sum(1 for r in results if isinstance(r, TimeoutError))
    return _report(config, records, wall_s, timeouts)


def run_loadgen(config: LoadGenConfig) -> dict[str, Any]:
    """Synchronous entry point (CLI and benchmarks)."""
    return asyncio.run(run_loadgen_async(config))


def _report(config: LoadGenConfig, records: list[dict[str, Any]],
            wall_s: float, timeouts: int) -> dict[str, Any]:
    by_status: dict[str, int] = {}
    for record in records:
        by_status[record["status"]] = by_status.get(record["status"], 0) + 1
    completed = [r for r in records if r["status"] == "ok"]
    shed = by_status.get("shed", 0)
    submitted = len(records)
    latencies = [r["latency_s"] for r in completed]
    per_tenant: dict[str, dict[str, Any]] = {}
    for tenant in config.tenant_names():
        mine = [r for r in records if r["tenant"] == tenant]
        done = [r for r in mine if r["status"] == "ok"]
        per_tenant[tenant] = {
            "submitted": len(mine),
            "completed": len(done),
            "shed": sum(1 for r in mine if r["status"] == "shed"),
            "mean_latency_s": (round(sum(r["latency_s"] for r in done)
                                     / len(done), 6) if done else 0.0),
        }
    fairness = jain_index([float(t["completed"])
                           for t in per_tenant.values()])
    return {
        "bench": "serve_loadgen",
        "address": config.address,
        "tenants": config.tenants,
        "jobs_per_tenant": config.jobs_per_tenant,
        "rate_hz": config.rate_hz,
        "seed": config.seed,
        "faults_active": config.faults.serve_active,
        "wall_s": round(wall_s, 3),
        "submitted": submitted,
        "by_status": dict(sorted(by_status.items())),
        "completed": len(completed),
        "shed": shed,
        "failed": by_status.get("failed", 0),
        "cancelled": by_status.get(protocol.STATUS_CANCELLED, 0),
        "deadline_exceeded": by_status.get(protocol.STATUS_DEADLINE, 0),
        "quota_exhausted": by_status.get(protocol.STATUS_QUOTA, 0),
        "errors": by_status.get("error", 0) + timeouts,
        "throughput_jobs_per_s": (round(len(completed) / wall_s, 4)
                                  if wall_s > 0 else 0.0),
        "shed_rate": round(shed / submitted, 4) if submitted else 0.0,
        "latency_s": {
            "p50": round(percentile(latencies, 50), 6),
            "p90": round(percentile(latencies, 90), 6),
            "p99": round(percentile(latencies, 99), 6),
            "mean": (round(sum(latencies) / len(latencies), 6)
                     if latencies else 0.0),
            "max": round(max(latencies), 6) if latencies else 0.0,
        },
        "fairness_jain": round(fairness, 4),
        "per_tenant": per_tenant,
    }
