"""Wire protocol of the experiment server: JSONL framing + job specs.

One message per line, UTF-8 JSON objects, newline-terminated — the
same framing as the obs event trace, chosen for the same reasons: it is
greppable, streams incrementally, survives partial reads, and needs no
dependency.  Every message carries a ``type`` field; unknown types and
undecodable lines raise :class:`~repro.errors.ProtocolError`, which the
server answers with an ``error`` message instead of dropping the
connection (one malformed request must not kill a tenant's healthy
jobs).

Client -> server: ``hello`` (handshake: tenant + protocol version),
``submit`` (a :class:`JobSpec`, optionally with a ``deadline_s`` and a
``cancel_on_disconnect`` policy), ``cancel`` (stop a submitted job),
``job_status`` (poll one job's live progress), ``status``, ``metrics``
(Prometheus text exposition of the server's live registry), ``bye``,
``shutdown`` (drain and exit — admin).  Server -> client: ``welcome``,
``accepted`` / ``shed`` (admission decision; a shed carries
``retry_after_s``), ``cancelling`` (cancel acknowledged; the terminal
verdict still arrives as ``done``), ``job_status`` (progress reply:
accesses simulated / cells done), ``cell`` (one streamed cell
payload), ``done`` (job complete — terminal ``status`` is one of
:data:`TERMINAL_STATUSES`, with a structured ``reason`` when the job
did not run to completion), ``stats``, ``metrics``, ``error``,
``stopping``.

A :class:`JobSpec` is the service-tier twin of one batch CLI
invocation: it validates against the same workload/prefetcher
registries and value ranges, then :meth:`JobSpec.compile` lowers it to
the *same* :class:`~repro.runner.Cell` objects and
:class:`~repro.experiments.common.ExperimentOptions` the batch path
builds — so the cell cache keys, the artifact store entries, and the
payload bytes of a served job are identical to ``domino-repro run``
over the same parameters.
"""

from __future__ import annotations

import dataclasses
import json
import re
from dataclasses import dataclass, field
from typing import Any

from ..config import SystemConfig
from ..errors import ProtocolError
from ..experiments.common import ExperimentOptions
from ..prefetchers.registry import prefetcher_names
from ..runner import Cell
from ..workloads import workload_names

#: Bump on any incompatible message-shape change; the handshake rejects
#: clients speaking a different version.
PROTO_VERSION = 1

#: Framing guard: longer lines are rejected before JSON parsing.
MAX_LINE_BYTES = 256 * 1024

# -- message types ----------------------------------------------------------
HELLO = "hello"
WELCOME = "welcome"
SUBMIT = "submit"
ACCEPTED = "accepted"
SHED = "shed"
CANCEL = "cancel"
CANCELLING = "cancelling"
JOB_STATUS = "job_status"
CELL = "cell"
DONE = "done"
STATUS = "status"
STATS = "stats"
METRICS = "metrics"
ERROR = "error"
BYE = "bye"
SHUTDOWN = "shutdown"
STOPPING = "stopping"

#: Types a client may send (anything else is a protocol error).
CLIENT_TYPES = frozenset({HELLO, SUBMIT, CANCEL, JOB_STATUS, STATUS,
                          METRICS, BYE, SHUTDOWN})

# -- job lifecycle ----------------------------------------------------------
# queued -> running -> {ok, failed, cancelled, deadline_exceeded,
# quota_exhausted}; see docs/SERVING.md for the full state machine.
STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_CANCELLED = "cancelled"
STATUS_DEADLINE = "deadline_exceeded"
STATUS_QUOTA = "quota_exhausted"

#: Every status a ``done`` frame may carry.
TERMINAL_STATUSES = frozenset({STATUS_OK, STATUS_FAILED, STATUS_CANCELLED,
                               STATUS_DEADLINE, STATUS_QUOTA})

#: Structured reasons a cancellation can carry (``done.reason`` /
#: ``cancelling.reason``).
REASON_CLIENT_CANCEL = "client_cancel"
REASON_DISCONNECTED = "disconnected"
REASON_SERVER_SHUTDOWN = "server_shutdown"

#: Tenant names are path/metric-safe tokens.
_TENANT_RE = re.compile(r"^[a-z0-9][a-z0-9_.-]{0,63}$")

#: Cell kinds a job spec may request (``table1`` is static output with
#: no simulation behind it — nothing to serve).
SPEC_KINDS = ("trace", "opportunity", "multicore")

#: Value ranges enforced at admission; generous for real use, tight
#: enough that a single job cannot monopolise a worker slot for hours.
N_ACCESSES_RANGE = (1_000, 2_000_000)
DEGREE_RANGE = (1, 64)
MAX_CELLS_PER_JOB = 64


# -- framing ----------------------------------------------------------------


def encode_message(message: dict[str, Any]) -> bytes:
    """One wire frame: compact JSON + newline, UTF-8."""
    try:
        text = json.dumps(message, separators=(",", ":"), sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unserialisable message: {exc}") from exc
    return text.encode("utf-8") + b"\n"


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Parse one frame into a message dict (``type`` guaranteed)."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                f"frame of {len(line)} bytes exceeds the "
                f"{MAX_LINE_BYTES}-byte limit")
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not UTF-8: {exc}") from exc
    text = line.strip()
    if not text:
        raise ProtocolError("empty frame")
    try:
        message = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame must be a JSON object")
    kind = message.get("type")
    if not isinstance(kind, str) or not kind:
        raise ProtocolError("message has no 'type' field")
    return message


# -- job specs --------------------------------------------------------------


def _override_fields() -> dict[str, type]:
    """Scalar :class:`SystemConfig` fields a spec may override."""
    defaults = SystemConfig()
    return {f.name: type(getattr(defaults, f.name))
            for f in dataclasses.fields(SystemConfig)
            if isinstance(getattr(defaults, f.name), (int, float))}


def _check_range(name: str, value: float, lo: float, hi: float) -> None:
    if not lo <= value <= hi:
        raise ProtocolError(f"spec field {name}={value!r} outside [{lo}, {hi}]")


@dataclass(frozen=True)
class JobSpec:
    """One validated experiment request (the unit of admission).

    ``degrees`` fans a ``trace`` job into one cell per degree (streamed
    back individually); ``opportunity`` and ``multicore`` jobs are
    single-cell.  ``overrides`` are scalar :class:`SystemConfig` fields
    applied exactly as the batch path applies them.
    """

    workload: str
    prefetcher: str = "domino"
    kind: str = "trace"
    degrees: tuple[int, ...] = (4,)
    n_accesses: int = 60_000
    warmup_frac: float = 0.5
    seed: int = 1234
    config_name: str = "default"
    overrides: tuple[tuple[str, Any], ...] = field(default_factory=tuple)

    _FIELDS = frozenset({"workload", "prefetcher", "kind", "degrees",
                         "n_accesses", "warmup_frac", "seed", "config_name",
                         "overrides"})

    def __post_init__(self) -> None:
        if self.kind not in SPEC_KINDS:
            raise ProtocolError(
                f"unknown spec kind {self.kind!r}; known: {', '.join(SPEC_KINDS)}")
        if self.workload not in workload_names():
            raise ProtocolError(f"unknown workload {self.workload!r}")
        known = set(prefetcher_names())
        if self.kind == "multicore":
            known.add("baseline")
        if self.prefetcher not in known:
            raise ProtocolError(f"unknown prefetcher {self.prefetcher!r}")
        if not self.degrees:
            raise ProtocolError("spec needs at least one degree")
        if len(self.degrees) > MAX_CELLS_PER_JOB:
            raise ProtocolError(
                f"{len(self.degrees)} degrees exceed the "
                f"{MAX_CELLS_PER_JOB}-cell job limit")
        for degree in self.degrees:
            _check_range("degrees", degree, *DEGREE_RANGE)
        _check_range("n_accesses", self.n_accesses, *N_ACCESSES_RANGE)
        _check_range("warmup_frac", self.warmup_frac, 0.0, 0.9)
        _check_range("seed", self.seed, 0, 2**32 - 1)
        if self.config_name not in ("default", "timing"):
            raise ProtocolError(f"unknown config name {self.config_name!r}")
        allowed = _override_fields()
        for key, value in self.overrides:
            if key not in allowed:
                raise ProtocolError(
                    f"override {key!r} is not a scalar SystemConfig field")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ProtocolError(
                    f"override {key}={value!r} must be a number")

    # -- construction ---------------------------------------------------
    @classmethod
    def from_dict(cls, obj: Any) -> "JobSpec":
        """Validate an untrusted ``submit`` spec into a :class:`JobSpec`."""
        if not isinstance(obj, dict):
            raise ProtocolError("spec must be a JSON object")
        unknown = set(obj) - cls._FIELDS - {"degree"}
        if unknown:
            raise ProtocolError(
                f"unknown spec field(s): {', '.join(sorted(unknown))}")
        fields: dict[str, Any] = {}
        for name, kind in (("workload", str), ("prefetcher", str),
                           ("kind", str), ("config_name", str)):
            if name in obj:
                if not isinstance(obj[name], kind):
                    raise ProtocolError(f"spec field {name!r} must be a string")
                fields[name] = obj[name]
        if "workload" not in fields:
            raise ProtocolError("spec needs a 'workload' field")
        for name in ("n_accesses", "seed"):
            if name in obj:
                if not isinstance(obj[name], int) or isinstance(obj[name], bool):
                    raise ProtocolError(f"spec field {name!r} must be an integer")
                fields[name] = obj[name]
        if "warmup_frac" in obj:
            value = obj["warmup_frac"]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ProtocolError("spec field 'warmup_frac' must be a number")
            fields["warmup_frac"] = float(value)
        if "degree" in obj and "degrees" in obj:
            raise ProtocolError("spec has both 'degree' and 'degrees'")
        degrees = obj.get("degrees", [obj["degree"]] if "degree" in obj else None)
        if degrees is not None:
            if not isinstance(degrees, list) or not all(
                    isinstance(d, int) and not isinstance(d, bool)
                    for d in degrees):
                raise ProtocolError("spec degrees must be a list of integers")
            fields["degrees"] = tuple(degrees)
        overrides = obj.get("overrides")
        if overrides is not None:
            if not isinstance(overrides, dict):
                raise ProtocolError("spec overrides must be an object")
            fields["overrides"] = tuple(sorted(overrides.items()))
        return cls(**fields)

    def to_dict(self) -> dict[str, Any]:
        """The JSON form a client puts in a ``submit`` message."""
        return {
            "workload": self.workload,
            "prefetcher": self.prefetcher,
            "kind": self.kind,
            "degrees": list(self.degrees),
            "n_accesses": self.n_accesses,
            "warmup_frac": self.warmup_frac,
            "seed": self.seed,
            "config_name": self.config_name,
            "overrides": dict(self.overrides),
        }

    @property
    def estimated_accesses(self) -> int:
        """Simulated accesses this job will meter if run to completion.

        The admission-time quota reservation: one engine pass of
        ``n_accesses`` per simulating cell.  An upper-bound heuristic,
        reconciled against the token's actual progress at finish.
        """
        n_cells = len(self.degrees) if self.kind == "trace" else 1
        return n_cells * self.n_accesses

    # -- lowering -------------------------------------------------------
    def compile(self) -> tuple[list[Cell], ExperimentOptions]:
        """Lower to the exact cells + options the batch path would run.

        Every cell carries an explicit ``degree`` so its cache key never
        depends on the options' default degree — the cornerstone of the
        served == batch bit-identity guarantee.
        """
        options = ExperimentOptions(
            n_accesses=self.n_accesses, warmup_frac=self.warmup_frac,
            seed=self.seed, degree=self.degrees[0],
            workloads=(self.workload,))
        if self.kind == "trace":
            cells = [Cell(kind="trace", workload=self.workload,
                          prefetcher=self.prefetcher, degree=degree,
                          config_name=self.config_name,
                          overrides=self.overrides)
                     for degree in self.degrees]
        elif self.kind == "opportunity":
            cells = [Cell(kind="opportunity", workload=self.workload,
                          config_name=self.config_name,
                          overrides=self.overrides)]
        else:  # multicore
            cells = [Cell(kind="multicore", workload=self.workload,
                          prefetcher=self.prefetcher,
                          config_name="timing" if self.config_name == "default"
                          else self.config_name,
                          overrides=self.overrides)]
        return cells, options


# -- message constructors ---------------------------------------------------


def hello(tenant: str, proto: int = PROTO_VERSION) -> dict[str, Any]:
    return {"type": HELLO, "tenant": tenant, "proto": proto}


def welcome(version: str) -> dict[str, Any]:
    return {"type": WELCOME, "proto": PROTO_VERSION, "server": version}


def submit(request_id: str, spec: JobSpec | dict[str, Any],
           deadline_s: float | None = None,
           cancel_on_disconnect: bool | None = None) -> dict[str, Any]:
    body = spec.to_dict() if isinstance(spec, JobSpec) else spec
    message: dict[str, Any] = {"type": SUBMIT, "id": request_id, "spec": body}
    if deadline_s is not None:
        message["deadline_s"] = deadline_s
    if cancel_on_disconnect is not None:
        message["cancel_on_disconnect"] = cancel_on_disconnect
    return message


def parse_submit_deadline(message: dict[str, Any]) -> float | None:
    """Validate the optional per-job ``deadline_s`` of a submit."""
    deadline_s = message.get("deadline_s")
    if deadline_s is None:
        return None
    if (not isinstance(deadline_s, (int, float)) or isinstance(deadline_s, bool)
            or deadline_s <= 0):
        raise ProtocolError(
            f"submit deadline_s={deadline_s!r} must be a positive number")
    return float(deadline_s)


def parse_submit_cancel_on_disconnect(message: dict[str, Any]) -> bool | None:
    """Validate the optional ``cancel_on_disconnect`` of a submit."""
    flag = message.get("cancel_on_disconnect")
    if flag is None:
        return None
    if not isinstance(flag, bool):
        raise ProtocolError(
            f"submit cancel_on_disconnect={flag!r} must be a boolean")
    return flag


def accepted(request_id: str, job_id: str, queue_depth: int,
             tenant_depth: int) -> dict[str, Any]:
    return {"type": ACCEPTED, "id": request_id, "job": job_id,
            "queue_depth": queue_depth, "tenant_depth": tenant_depth}


def shed(request_id: str, reason: str, retry_after_s: float) -> dict[str, Any]:
    return {"type": SHED, "id": request_id, "reason": reason,
            "retry_after_s": round(retry_after_s, 4)}


def cell_result(request_id: str, job_id: str, seq: int, n_cells: int,
                label: str, status: str,
                payload: dict[str, Any] | None) -> dict[str, Any]:
    return {"type": CELL, "id": request_id, "job": job_id, "seq": seq,
            "of": n_cells, "cell": label, "status": status,
            "payload": payload}


def done(request_id: str, job_id: str, status: str, n_ok: int, n_failed: int,
         wait_s: float, service_s: float, reason: str = "") -> dict[str, Any]:
    message = {"type": DONE, "id": request_id, "job": job_id, "status": status,
               "ok": n_ok, "failed": n_failed,
               "wait_s": round(wait_s, 6), "service_s": round(service_s, 6)}
    if reason:
        message["reason"] = reason
    return message


def cancel(job_id: str, request_id: str | None = None) -> dict[str, Any]:
    """Client request: stop ``job_id`` (queued or running)."""
    message: dict[str, Any] = {"type": CANCEL, "job": job_id}
    if request_id is not None:
        message["id"] = request_id
    return message


def cancelling(job_id: str, reason: str,
               request_id: str | None = None) -> dict[str, Any]:
    """Server ack: cancellation of ``job_id`` is underway; the terminal
    verdict still arrives as the job's ``done`` frame."""
    message: dict[str, Any] = {"type": CANCELLING, "job": job_id,
                               "reason": reason}
    if request_id is not None:
        message["id"] = request_id
    return message


def job_status_request(job_id: str) -> dict[str, Any]:
    """Client request: poll one job's live progress."""
    return {"type": JOB_STATUS, "job": job_id}


def job_status(job_id: str, state: str, accesses_done: int, cells_done: int,
               n_cells: int, request_id: str | None = None) -> dict[str, Any]:
    """Server reply: where ``job_id`` is in its lifecycle right now."""
    message: dict[str, Any] = {"type": JOB_STATUS, "job": job_id,
                               "state": state,
                               "accesses_done": accesses_done,
                               "cells_done": cells_done, "of": n_cells}
    if request_id is not None:
        message["id"] = request_id
    return message


def stats(body: dict[str, Any]) -> dict[str, Any]:
    return {"type": STATS, **body}


def metrics(text: str, content_type: str) -> dict[str, Any]:
    """Prometheus text exposition, framed; ``text`` is the document."""
    return {"type": METRICS, "content_type": content_type, "text": text}


def error(message: str, request_id: str | None = None) -> dict[str, Any]:
    body: dict[str, Any] = {"type": ERROR, "error": message}
    if request_id is not None:
        body["id"] = request_id
    return body


def parse_hello(message: dict[str, Any]) -> str:
    """Validate a handshake message; returns the tenant name."""
    if message.get("type") != HELLO:
        raise ProtocolError(
            f"expected a hello handshake, got {message.get('type')!r}")
    proto = message.get("proto")
    if proto != PROTO_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: client speaks {proto!r}, "
            f"server speaks {PROTO_VERSION}")
    tenant = message.get("tenant")
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        raise ProtocolError(
            f"tenant {tenant!r} is not a valid token "
            "(lowercase alphanumerics plus '._-', max 64 chars)")
    return tenant
