"""The asyncio experiment server: connections, workers, streaming.

One process, one event loop, three kinds of task:

* the **listener** (TCP on ``host:port`` or a Unix socket at ``path``)
  accepts connections and runs one handler task per client;
* **handler tasks** speak the JSONL protocol: handshake, then a loop of
  ``submit`` / ``status`` / ``bye`` / ``shutdown`` messages.  Admission
  decisions are made inline (the scheduler is pure and the event loop
  is single-threaded, so no locking); accepted jobs are queued and a
  condition variable wakes the workers;
* **worker tasks** (``slots`` of them) pull jobs in weighted-fair order
  and execute each cell through :func:`repro.runner.run_cells` inside
  ``asyncio.to_thread``, so the event loop keeps serving other tenants
  while a simulation runs.  Results stream back per cell as they
  complete.

Every job carries a :class:`~repro.cancel.CancelToken` from pickup to
terminal frame, and a per-job **watchdog task** polls the things only
the event loop can see: the admitting connection's liveness (for the
opt-in ``cancel_on_disconnect`` policy) and the tenant's access quota
against the token's live progress counter.  Deadlines ride on the
token itself — every engine checkpoint doubles as a deadline check —
so a ``cancel`` frame, a ``deadline_s``, an exhausted quota, or a
:meth:`ExperimentServer.shutdown_now` stops the *simulation*, not just
the asyncio wrapper, within ``cancel_check_every`` simulated accesses.
The job then ends with a structured terminal ``done`` frame
(``cancelled`` / ``deadline_exceeded`` / ``quota_exhausted``, with a
``reason``), its tenant billed only for the accesses actually
simulated.  A client that disconnected mid-job without the policy
simply stops receiving — the job still runs to completion and its
artifacts stay in the store.

For chaos testing, a :class:`~repro.faults.FaultPlan` with network
modes (``reset`` / ``partition`` / ``blackhole`` / ``slow_write``)
makes the server's own write boundary fail deterministically per
``(tenant, connection index)`` — the fixture for proving that a
partitioned tenant's jobs are reaped while other tenants' results
stay bit-identical.

Execution reuses the runner's whole fault-tolerance stack: the per-job
:class:`~repro.runner.ExecutionPolicy` carries the server's retry
budget, backoff, and per-cell timeout, and ``keep_going`` degradation
turns an exhausted cell into a ``failed`` cell message instead of a
dead worker.  With ``use_cache`` on (the default) served jobs read and
write the same content-addressed artifact store as batch runs — a job
the batch path already computed is served from cache, bit-identically.

Telemetry is fully concurrent-safe: each job runs under a
context-local :class:`repro.obs.capture` (a :mod:`contextvars`
override that travels into ``asyncio.to_thread``), so any number of
slots can execute traced cells at once without interleaving a single
event — every absorbed record is tagged with its tenant and job, and
each job's span subtree hangs off the connection span that admitted
it.  The ``status``/``metrics`` frames expose the live stats plane:
queue depths, per-tenant virtual time, the in-flight job table, and a
Prometheus text exposition of the registry.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from dataclasses import dataclass, field
from typing import Any

from .. import __version__, obs
from ..cancel import DEFAULT_CHECK_EVERY, CancelToken
from ..errors import JobCancelled, ProtocolError, ServeError
from ..faults import FaultPlan
from ..obs import names as obs_names
from ..obs.prom import CONTENT_TYPE, render_prometheus
from ..obs.trace import Span, span
from ..runner import ExecutionPolicy, run_cells
from . import protocol
from .scheduler import AdmissionConfig, FairScheduler, Job

#: Server telemetry scope (off until obs.configure()).
_OBS = obs.scope("serve.server")

#: Queue-depth histogram buckets (jobs, not seconds).
QUEUE_DEPTH_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
                       128.0, 256.0)

#: A connection this deep into malformed frames is garbage, not a
#: client with a bug; it gets disconnected.
MAX_MALFORMED_PER_CONN = 32


@dataclass(frozen=True)
class ServeConfig:
    """One server instance: where it listens and how it executes.

    Exactly one of ``path`` (Unix socket) or ``host``/``port`` (TCP) is
    used; ``path`` wins when both are set.  ``port=0`` binds an
    ephemeral port (see :attr:`ExperimentServer.address`).
    """

    host: str = "127.0.0.1"
    port: int = 0
    path: str | None = None
    slots: int = 2
    retries: int = 1
    timeout_s: float | None = None
    use_cache: bool = True
    cache_dir: str | None = None
    #: ``ExecutionPolicy.jobs`` of each job's run (1 = in-thread serial;
    #: >1 spins a multiprocessing pool per multi-cell job).
    jobs_per_run: int = 1
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    weights: tuple[tuple[str, float], ...] = ()
    max_cells_per_job: int = 16
    #: Whether a client ``shutdown`` message may drain-stop the server.
    allow_remote_shutdown: bool = True
    #: Server-wide deadline applied to submits that carry none
    #: (None = unlimited).  Measured from worker pickup, not admission.
    default_deadline_s: float | None = None
    #: Default cancel-on-disconnect policy for submits that carry none.
    cancel_on_disconnect: bool = False
    #: Engine cancellation staleness bound, in simulated accesses.
    cancel_check_every: int = DEFAULT_CHECK_EVERY
    #: Watchdog poll interval for disconnect/quota checks.
    watchdog_poll_s: float = 0.05
    #: Chaos-only network fault plan applied at the write boundary.
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ServeError("slots must be >= 1")
        if self.jobs_per_run < 1:
            raise ServeError("jobs_per_run must be >= 1")
        if self.max_cells_per_job < 1:
            raise ServeError("max_cells_per_job must be >= 1")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ServeError("default_deadline_s must be positive (or None)")
        if self.cancel_check_every < 1:
            raise ServeError("cancel_check_every must be >= 1")
        if self.watchdog_poll_s <= 0:
            raise ServeError("watchdog_poll_s must be positive")

    def policy(self) -> ExecutionPolicy:
        """The execution policy every served job runs under."""
        return ExecutionPolicy(jobs=self.jobs_per_run,
                               use_cache=self.use_cache,
                               cache_dir=self.cache_dir,
                               retries=self.retries,
                               timeout_s=self.timeout_s,
                               keep_going=True)


class _Connection:
    """One client link: serialised writes + liveness tracking.

    The chaos plan can assign the link a network ``fate`` (rolled once
    per tenant connection by the server): ``reset`` closes before the
    second write, ``partition`` closes right after the
    ``net_after_writes``-th delivered frame, ``blackhole`` silently
    swallows every write past that point while reporting success, and
    ``slow_write`` stalls each write.  All of it happens here, at the
    write boundary, so the rest of the server exercises its real
    dead/dark-connection paths.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.tenant = ""
        self.closed = False
        #: The connection's open span; jobs admitted on this link hang
        #: their span subtrees off it (the job runs in a worker task,
        #: so the parent must travel explicitly, not via context).
        self.span: Span | None = None
        #: Injected network fate ("" = healthy); see class docstring.
        self.fate = ""
        self.net_after_writes = 2
        self.slow_write_s = 0.0
        self._writes = 0
        self._lock = asyncio.Lock()

    async def send(self, message: dict[str, Any]) -> bool:
        """Write one frame; False (never raises) on a dead connection."""
        if self.closed:
            return False
        if self.fate == "reset" and self._writes >= 1:
            await self.close()
            return False
        if self.fate == "blackhole" and self._writes >= self.net_after_writes:
            self._writes += 1
            return True  # the void reports success
        frame = protocol.encode_message(message)
        try:
            async with self._lock:
                if self.fate == "slow_write" and self.slow_write_s > 0:
                    await asyncio.sleep(self.slow_write_s)
                self.writer.write(frame)
                await self.writer.drain()
        except (ConnectionError, OSError):
            self.closed = True
            return False
        self._writes += 1
        if self.fate == "partition" and self._writes >= self.net_after_writes:
            # Delivered, then the network went dark under the client.
            await self.close()
        return True

    async def close(self) -> None:
        self.closed = True
        with contextlib.suppress(ConnectionError, OSError):
            self.writer.close()
            await self.writer.wait_closed()


@dataclass
class _JobRecord:
    """One job's live lifecycle state, admission to terminal frame."""

    job: Job
    conn: _Connection | None
    state: str = protocol.STATE_QUEUED
    token: CancelToken | None = None
    slot: int = -1
    started_at: float = 0.0
    cells_done: int = 0
    watchdog: asyncio.Task[None] | None = None

    @property
    def accesses_done(self) -> int:
        return self.token.progress if self.token is not None else 0


class ExperimentServer:
    """Multi-tenant front-end over the cell runner (see module doc)."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.scheduler = FairScheduler(admission=self.config.admission,
                                       weights=dict(self.config.weights))
        self._policy = self.config.policy()
        self._server: asyncio.AbstractServer | None = None
        self._cond: asyncio.Condition = asyncio.Condition()
        self._done: asyncio.Event = asyncio.Event()
        self._stop_workers = False
        self._workers: list[asyncio.Task[None]] = []
        #: Every queued or running job (job_id -> record); single event
        #: loop, so plain dict updates suffice.  Terminal jobs leave.
        self._jobs: dict[str, _JobRecord] = {}
        self._job_counter = 0
        #: Connections accepted per tenant — the net-fault roll index.
        self._conn_counts: dict[str, int] = {}
        self._started_at = 0.0

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and spawn the worker tasks."""
        if self._server is not None:
            raise ServeError("server already started")
        if self.config.path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle, path=self.config.path,
                limit=protocol.MAX_LINE_BYTES + 2)
        else:
            self._server = await asyncio.start_server(
                self._handle, host=self.config.host, port=self.config.port,
                limit=protocol.MAX_LINE_BYTES + 2)
        self._started_at = time.monotonic()
        self._workers = [asyncio.create_task(self._worker(slot),
                                             name=f"serve-worker-{slot}")
                         for slot in range(self.config.slots)]
        _OBS.info(obs_names.EVT_SERVER_START, address=str(self.address),
                  slots=self.config.slots,
                  max_queued=self.config.admission.max_queued_total)

    @property
    def address(self) -> str:
        """``unix:<path>`` or ``host:port`` (the *bound* port)."""
        if self.config.path is not None:
            return f"unix:{self.config.path}"
        if self._server is not None and self._server.sockets:
            host, port = self._server.sockets[0].getsockname()[:2]
            return f"{host}:{port}"
        return f"{self.config.host}:{self.config.port}"

    async def serve_forever(self) -> None:
        """Block until a drain shutdown completes."""
        if self._server is None:
            await self.start()
        await self._done.wait()

    async def request_shutdown(self) -> None:
        """Begin a graceful drain: shed new work, finish admitted work.

        Every job admitted before this call still runs to completion
        and streams its results; only *new* submits are shed (reason
        ``stopping``).  The server exits when the queue is empty and
        nothing is in flight.
        """
        self.scheduler.draining = True
        async with self._cond:
            self._maybe_finish_drain()
            self._cond.notify_all()

    async def shutdown_now(self) -> None:
        """Hard drain: stop admitted work instead of finishing it.

        Queued jobs leave the queue with a terminal ``cancelled``
        (reason ``server_shutdown``) frame; running jobs get their
        token cancelled and send the same terminal frame as they
        unwind — no client is left holding a silently dropped
        connection.  The server still exits through the normal drain
        path once the interrupted jobs have stopped.
        """
        self.scheduler.draining = True
        for record in list(self._jobs.values()):
            if record.state == protocol.STATE_QUEUED:
                if self.scheduler.cancel_queued(record.job.job_id) is None:
                    continue  # pragma: no cover - racing a worker pickup
                self._jobs.pop(record.job.job_id, None)
                self._note_cancel(record, protocol.REASON_SERVER_SHUTDOWN,
                                  protocol.STATUS_CANCELLED)
                if record.conn is not None:
                    wait_s = time.monotonic() - record.job.enqueued_at
                    await record.conn.send(protocol.done(
                        record.job.request_id, record.job.job_id,
                        protocol.STATUS_CANCELLED, 0, 0, wait_s, 0.0,
                        reason=protocol.REASON_SERVER_SHUTDOWN))
            elif record.token is not None:
                record.token.cancel(protocol.REASON_SERVER_SHUTDOWN)
        async with self._cond:
            self._maybe_finish_drain()
            self._cond.notify_all()

    async def aclose(self) -> None:
        """Drain-stop and wait for the workers and listener to exit."""
        await self.request_shutdown()
        await self._done.wait()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)

    def _maybe_finish_drain(self) -> None:
        """Under ``_cond``: complete the drain when no work remains."""
        if (self.scheduler.draining and not self._done.is_set()
                and self.scheduler.queue_depth == 0
                and self.scheduler.in_flight == 0):
            self._stop_workers = True
            if self._server is not None:
                self._server.close()
            _OBS.info(obs_names.EVT_SERVER_STOP,
                      uptime_s=round(time.monotonic() - self._started_at, 3),
                      **{k: v for k, v in self.scheduler.stats().items()
                         if isinstance(v, (int, bool))})
            self._done.set()

    # -- connection handling --------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        conn = _Connection(writer)
        malformed = 0
        try:
            try:
                frame = await reader.readline()
                conn.tenant = protocol.parse_hello(protocol.decode_line(frame))
            except (ProtocolError, ValueError) as exc:
                await conn.send(protocol.error(str(exc)))
                return
            self._roll_net_fate(conn)
            _OBS.info(obs_names.EVT_CLIENT_CONNECT, tenant=conn.tenant)
            await conn.send(protocol.welcome(__version__))
            with span(obs_names.SPAN_CONNECTION, tenant=conn.tenant) as conn_span:
                conn.span = conn_span
                while True:
                    try:
                        frame = await reader.readline()
                    except ValueError:
                        # Overlong line: the stream is desynchronised and
                        # cannot be safely re-framed — drop the client.
                        await conn.send(protocol.error("frame too long"))
                        break
                    if not frame:
                        break  # EOF
                    try:
                        message = protocol.decode_line(frame)
                        keep_open = await self._dispatch(conn, message)
                    except ProtocolError as exc:
                        malformed += 1
                        self._note_malformed(conn, exc)
                        await conn.send(protocol.error(
                            str(exc), request_id=self._request_id_of(frame)))
                        if malformed >= MAX_MALFORMED_PER_CONN:
                            break
                        continue
                    if not keep_open:
                        break
        finally:
            await conn.close()
            await self._reap_disconnected(conn)
            _OBS.info(obs_names.EVT_CLIENT_DISCONNECT, tenant=conn.tenant,
                      malformed=malformed)

    def _roll_net_fate(self, conn: _Connection) -> None:
        """Assign this connection its chaos-plan network fate (if any)."""
        plan = self.config.faults
        if plan is None or not plan.net_active:
            return
        index = self._conn_counts.get(conn.tenant, 0)
        self._conn_counts[conn.tenant] = index + 1
        fate = plan.net_fate(conn.tenant, index)
        if not fate:
            return
        conn.fate = fate
        conn.net_after_writes = plan.net_after_writes
        conn.slow_write_s = plan.slow_write_s
        if _OBS.enabled:
            _OBS.warning(obs_names.EVT_NET_FAULT, tenant=conn.tenant,
                         conn_index=index, mode=fate)
            _OBS.counter(obs_names.MET_NET_FAULTS).inc()

    async def _reap_disconnected(self, conn: _Connection) -> None:
        """Apply each job's cancel-on-disconnect policy when its
        admitting connection dies.  Queued jobs leave the queue
        immediately (nobody is listening for a terminal frame); running
        jobs get their token cancelled and unwind through the normal
        terminal path."""
        notify = False
        for record in list(self._jobs.values()):
            if record.conn is not conn or not record.job.cancel_on_disconnect:
                continue
            if record.state == protocol.STATE_QUEUED:
                if self.scheduler.cancel_queued(record.job.job_id) is not None:
                    self._note_cancel(record, protocol.REASON_DISCONNECTED,
                                      protocol.STATUS_CANCELLED)
                    self._jobs.pop(record.job.job_id, None)
                    notify = True
            elif record.token is not None:
                record.token.cancel(protocol.REASON_DISCONNECTED)
        if notify:
            async with self._cond:
                self._maybe_finish_drain()
                self._cond.notify_all()

    @staticmethod
    def _request_id_of(frame: bytes) -> str | None:
        """Best-effort request id from a frame that failed validation."""
        import json

        try:
            parsed = json.loads(frame.decode("utf-8", "replace"))
        except json.JSONDecodeError:
            return None
        if isinstance(parsed, dict) and isinstance(parsed.get("id"), str):
            return parsed["id"]
        return None

    def _note_malformed(self, conn: _Connection, exc: ProtocolError) -> None:
        if _OBS.enabled:
            _OBS.warning(obs_names.EVT_REQUEST_MALFORMED, tenant=conn.tenant,
                         error=str(exc))
            _OBS.counter(obs_names.MET_REQUESTS_MALFORMED).inc()

    async def _dispatch(self, conn: _Connection,
                        message: dict[str, Any]) -> bool:
        """Handle one decoded client message; False closes the link."""
        kind = message["type"]
        if kind not in protocol.CLIENT_TYPES:
            raise ProtocolError(f"unexpected message type {kind!r}")
        if kind == protocol.BYE:
            return False
        if kind == protocol.STATUS:
            await conn.send(protocol.stats(self._stats_body()))
            return True
        if kind == protocol.METRICS:
            await conn.send(protocol.metrics(self._render_metrics(),
                                             CONTENT_TYPE))
            return True
        if kind == protocol.SHUTDOWN:
            if not self.config.allow_remote_shutdown:
                raise ProtocolError("shutdown is disabled on this server")
            await conn.send({"type": protocol.STOPPING})
            await self.request_shutdown()
            return True
        if kind == protocol.CANCEL:
            await self._cancel(conn, message)
            return True
        if kind == protocol.JOB_STATUS:
            await self._job_status(conn, message)
            return True
        await self._submit(conn, message)
        return True

    def _owned_record(self, conn: _Connection,
                      message: dict[str, Any]) -> tuple[str, _JobRecord | None]:
        """Resolve a cancel/job_status target to this tenant's record.

        Unknown ids and other tenants' jobs look identical from the
        outside (no cross-tenant existence oracle); both return None.
        """
        job_id = message.get("job")
        if not isinstance(job_id, str) or not job_id:
            raise ProtocolError(f"{message['type']} needs a string 'job' field")
        record = self._jobs.get(job_id)
        if record is not None and record.job.tenant != conn.tenant:
            record = None
        return job_id, record

    async def _cancel(self, conn: _Connection,
                      message: dict[str, Any]) -> None:
        """Handle a ``cancel`` frame for a queued or running job.

        A miss is answered with an ``error`` frame rather than raised:
        cancelling a job that just finished is an ordinary race, not a
        protocol violation, and must not count toward the malformed
        budget.
        """
        request_id = message.get("id") if isinstance(message.get("id"), str) \
            else None
        job_id, record = self._owned_record(conn, message)
        if record is None:
            await conn.send(protocol.error(
                f"unknown job {job_id!r} (already terminal, or not yours)",
                request_id=request_id))
            return
        await conn.send(protocol.cancelling(job_id,
                                            protocol.REASON_CLIENT_CANCEL,
                                            request_id=request_id))
        if record.state == protocol.STATE_QUEUED:
            if self.scheduler.cancel_queued(job_id) is None:
                # Raced a worker pickup between dispatch and here; the
                # token path below will land instead.
                if record.token is not None:  # pragma: no cover - race
                    record.token.cancel(protocol.REASON_CLIENT_CANCEL)
                return
            self._jobs.pop(job_id, None)
            self._note_cancel(record, protocol.REASON_CLIENT_CANCEL,
                              protocol.STATUS_CANCELLED)
            wait_s = time.monotonic() - record.job.enqueued_at
            await conn.send(protocol.done(
                record.job.request_id, job_id, protocol.STATUS_CANCELLED,
                0, 0, wait_s, 0.0, reason=protocol.REASON_CLIENT_CANCEL))
            async with self._cond:
                self._maybe_finish_drain()
                self._cond.notify_all()
        elif record.token is not None:
            record.token.cancel(protocol.REASON_CLIENT_CANCEL)

    async def _job_status(self, conn: _Connection,
                          message: dict[str, Any]) -> None:
        """Answer a ``job_status`` poll with live lifecycle progress."""
        job_id, record = self._owned_record(conn, message)
        if record is None:
            await conn.send(protocol.error(
                f"unknown job {job_id!r} (already terminal, or not yours)"))
            return
        await conn.send(protocol.job_status(
            job_id, record.state, record.accesses_done, record.cells_done,
            len(record.job.cells)))

    def _stats_body(self) -> dict[str, Any]:
        """The live stats plane: scheduler view + in-flight job table +
        registered-name registry metrics (counters and gauges only —
        histograms travel on the ``metrics`` frame, where cumulative
        buckets have a standard wire form)."""
        now = time.monotonic()
        body = self.scheduler.stats()
        body["address"] = self.address
        body["uptime_s"] = round(now - self._started_at, 3)
        body["in_flight_jobs"] = [
            {"job": job_id, "tenant": record.job.tenant,
             "slot": record.slot, "cells": len(record.job.cells),
             "cells_done": record.cells_done,
             "accesses_done": record.accesses_done,
             "running_s": round(now - record.started_at, 3)}
            for job_id, record in sorted(self._jobs.items())
            if record.state == protocol.STATE_RUNNING]
        st = obs.base_state()
        if st is not None:
            snapshot = st.registry.snapshot()
            registered = obs_names.METRIC_NAMES
            body["metrics"] = {
                kind: {name: value
                       for name, value in snapshot.get(kind, {}).items()
                       if name.rpartition(".")[2] in registered}
                for kind in ("counters", "gauges")}
        return body

    def _render_metrics(self) -> str:
        """The Prometheus exposition: registry snapshot (when telemetry
        is on) plus live gauges synthesised from the scheduler — the
        latter exist even on an untraced server."""
        st = obs.base_state()
        snapshot = st.registry.snapshot() if st is not None else {}
        live: dict[str, float] = {
            f"serve.server.{obs_names.MET_QUEUE_DEPTH_NOW}":
                float(self.scheduler.queue_depth),
            f"serve.server.{obs_names.MET_IN_FLIGHT_NOW}":
                float(self.scheduler.in_flight),
            f"serve.server.{obs_names.MET_UPTIME_S}":
                round(time.monotonic() - self._started_at, 3),
        }
        for name, row in self.scheduler.stats()["tenants"].items():
            live[f"serve.tenant.{name}.{obs_names.MET_TENANT_VTIME}"] = \
                float(row["vtime"])
        return render_prometheus(snapshot, extra_gauges=live)

    async def _submit(self, conn: _Connection,
                      message: dict[str, Any]) -> None:
        request_id = message.get("id")
        if not isinstance(request_id, str) or not request_id:
            raise ProtocolError("submit needs a string 'id' field")
        spec = protocol.JobSpec.from_dict(message.get("spec"))
        deadline_s = protocol.parse_submit_deadline(message)
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        cancel_on_disconnect = protocol.parse_submit_cancel_on_disconnect(
            message)
        if cancel_on_disconnect is None:
            cancel_on_disconnect = self.config.cancel_on_disconnect
        cells, options = spec.compile()
        if len(cells) > self.config.max_cells_per_job:
            raise ProtocolError(
                f"job expands to {len(cells)} cells; this server caps "
                f"jobs at {self.config.max_cells_per_job}")
        self._job_counter += 1
        job = Job(job_id=f"j{self._job_counter}", request_id=request_id,
                  tenant=conn.tenant, spec=spec, cells=cells,
                  options=options, enqueued_at=time.monotonic(),
                  deadline_s=deadline_s,
                  cancel_on_disconnect=cancel_on_disconnect)
        admission = self.scheduler.submit(job, now=time.monotonic())
        if _OBS.enabled:
            _OBS.histogram(obs_names.MET_QUEUE_DEPTH,
                           QUEUE_DEPTH_BUCKETS).observe(admission.queue_depth)
        if not admission.accepted:
            if _OBS.enabled:
                _OBS.warning(obs_names.EVT_JOB_SHED, tenant=job.tenant,
                             job=job.job_id, reason=admission.reason,
                             retry_after_s=round(admission.retry_after_s, 4))
                _OBS.counter(obs_names.MET_JOBS_SHED).inc()
                if admission.reason == protocol.STATUS_QUOTA:
                    _OBS.counter(obs_names.MET_JOBS_QUOTA_EXHAUSTED).inc()
            await conn.send(protocol.shed(request_id, admission.reason,
                                          admission.retry_after_s))
            return
        self._jobs[job.job_id] = _JobRecord(job=job, conn=conn)
        if _OBS.enabled:
            _OBS.info(obs_names.EVT_JOB_ADMITTED, tenant=job.tenant,
                      job=job.job_id, cells=len(cells),
                      queue_depth=admission.queue_depth)
            _OBS.counter(obs_names.MET_JOBS_ADMITTED).inc()
        await conn.send(protocol.accepted(request_id, job.job_id,
                                          admission.queue_depth,
                                          admission.tenant_depth))
        async with self._cond:
            self._cond.notify_all()

    # -- execution ------------------------------------------------------
    async def _worker(self, slot: int) -> None:
        while True:
            async with self._cond:
                while not self.scheduler.has_work() and not self._stop_workers:
                    await self._cond.wait()
                if self._stop_workers and not self.scheduler.has_work():
                    return
                job = self.scheduler.next_job()
            if job is None:  # pragma: no cover - racing another slot
                continue
            await self._run_job(job, slot)
            async with self._cond:
                # A freed in-flight slot may make a capped tenant
                # eligible again, and a drain may now be complete.
                self._maybe_finish_drain()
                self._cond.notify_all()

    @staticmethod
    def _terminal_status(cancel_reason: str) -> str:
        """Map a token's cancel reason to the wire terminal status."""
        if cancel_reason == protocol.STATUS_DEADLINE:
            return protocol.STATUS_DEADLINE
        if cancel_reason == protocol.STATUS_QUOTA:
            return protocol.STATUS_QUOTA
        return protocol.STATUS_CANCELLED

    def _note_cancel(self, record: _JobRecord, reason: str,
                     status: str) -> None:
        """Telemetry for one cancelled/reaped job (queued or running)."""
        if not _OBS.enabled:
            return
        _OBS.warning(obs_names.EVT_JOB_CANCELLED, tenant=record.job.tenant,
                     job=record.job.job_id, reason=reason, status=status,
                     cells_done=record.cells_done,
                     accesses_done=record.accesses_done)
        if status == protocol.STATUS_DEADLINE:
            _OBS.counter(obs_names.MET_JOBS_DEADLINE_EXCEEDED).inc()
        elif status == protocol.STATUS_QUOTA:
            _OBS.counter(obs_names.MET_JOBS_QUOTA_EXHAUSTED).inc()
        else:
            _OBS.counter(obs_names.MET_JOBS_CANCELLED).inc()
        token = record.token
        if token is not None and token.cancelled_at > 0.0:
            _OBS.histogram(obs_names.MET_CANCEL_LATENCY_S).observe(
                max(time.monotonic() - token.cancelled_at, 0.0))

    async def _watchdog(self, record: _JobRecord) -> None:
        """Poll the signals only the event loop can see for one running
        job: the admitting connection's liveness (cancel-on-disconnect)
        and the tenant's quota against the live progress counter.  The
        deadline needs no watchdog — the token checks it at every
        engine checkpoint."""
        job, token, conn = record.job, record.token, record.conn
        if token is None:  # pragma: no cover - set before the task spawns
            return
        with span(obs_names.SPAN_WATCHDOG,
                  parent=conn.span if conn is not None else None,
                  tenant=job.tenant, job=job.job_id):
            while not token.cancelled:
                await asyncio.sleep(self.config.watchdog_poll_s)
                if record.state != protocol.STATE_RUNNING:
                    return
                if (job.cancel_on_disconnect and conn is not None
                        and conn.closed):
                    token.cancel(protocol.REASON_DISCONNECTED)
                elif self.scheduler.overdrawn(job, token.progress,
                                              now=time.monotonic()):
                    token.cancel(protocol.STATUS_QUOTA)

    async def _run_job(self, job: Job, slot: int) -> None:
        """Execute one admitted job on this worker slot.

        The whole job runs under a context-local :class:`obs.capture`,
        so concurrent slots record into isolated buffers; the capture's
        events, metrics, and spans are folded back into the server's
        base state afterwards, tagged with the tenant and job.  The
        job span hangs off the admitting connection's span (an explicit
        parent — the connection lives in a different task), and each
        cell's subtree — including the runner spans recorded inside
        ``asyncio.to_thread`` — nests under a ``serve.cell`` span.

        The job's :class:`CancelToken` is created here (so a
        ``deadline_s`` measures service time, not queue time), handed
        to :func:`run_cells` for engine checkpoints, watched by a
        sibling watchdog task, and settled into one terminal ``done``
        frame whatever way the job ends.
        """
        record = self._jobs.get(job.job_id)
        if record is None:  # pragma: no cover - reaped before pickup
            record = _JobRecord(job=job, conn=None)
        record.state = protocol.STATE_RUNNING
        record.slot = slot
        record.token = CancelToken(
            deadline_s=job.deadline_s,
            check_every=self.config.cancel_check_every)
        record.started_at = job.started_at = time.monotonic()
        wait_s = job.started_at - job.enqueued_at
        conn = record.conn
        record.watchdog = asyncio.create_task(
            self._watchdog(record), name=f"watchdog-{job.job_id}")
        cancel_reason = ""
        try:
            with obs.capture(obs.current_config()) as cap:
                n_ok, n_failed, cancel_reason = await self._execute_job(
                    job, slot, conn, wait_s, record)
            obs.absorb(cap.events, cap.metrics,
                       tag={"tenant": job.tenant, "job": job.job_id},
                       spans=cap.spans)
        finally:
            record.state = "terminal"
            self._jobs.pop(job.job_id, None)
            record.watchdog.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await record.watchdog
        service_s = time.monotonic() - job.started_at
        ok = n_failed == 0 and not cancel_reason
        status = ("ok" if ok else protocol.STATUS_FAILED) if not cancel_reason \
            else self._terminal_status(cancel_reason)
        self.scheduler.finish(job, service_s, wait_s=wait_s, ok=ok,
                              cancelled=bool(cancel_reason),
                              accesses_done=record.accesses_done,
                              now=time.monotonic())
        if _OBS.enabled:
            outcome = {"tenant": job.tenant, "job": job.job_id,
                       "cells": len(job.cells), "failed": n_failed,
                       "wait_s": round(wait_s, 6),
                       "service_s": round(service_s, 6)}
            if ok:
                _OBS.info(obs_names.EVT_JOB_COMPLETED, **outcome)
                _OBS.counter(obs_names.MET_JOBS_COMPLETED).inc()
            elif not cancel_reason:
                _OBS.warning(obs_names.EVT_JOB_FAILED, **outcome)
                _OBS.counter(obs_names.MET_JOBS_FAILED).inc()
            if self.scheduler.quota_enabled and record.accesses_done:
                _OBS.counter(obs_names.MET_ACCESSES_CHARGED).inc(
                    record.accesses_done)
            _OBS.histogram(obs_names.MET_JOB_WAIT_S).observe(wait_s)
            _OBS.histogram(obs_names.MET_JOB_SERVICE_S).observe(service_s)
            tenant_scope = obs.scope(f"serve.tenant.{job.tenant}")
            tenant_scope.histogram(obs_names.MET_JOB_WAIT_S).observe(wait_s)
            tenant_scope.histogram(obs_names.MET_JOB_SERVICE_S).observe(service_s)
        if cancel_reason:
            self._note_cancel(record, cancel_reason, status)
        if conn is not None:
            await conn.send(protocol.done(
                job.request_id, job.job_id, status, n_ok, n_failed,
                wait_s, service_s, reason=cancel_reason))

    async def _execute_job(self, job: Job, slot: int,
                           conn: _Connection | None, wait_s: float,
                           record: _JobRecord) -> tuple[int, int, str]:
        """The captured body of one job: cell loop + streaming.

        Returns ``(n_ok, n_failed, cancel_reason)``; a non-empty reason
        means the loop was interrupted mid-job (the current cell's
        simulation raised :class:`JobCancelled`, or the token tripped
        between cells) and the remaining cells never ran.
        """
        _OBS.info(obs_names.EVT_JOB_STARTED, tenant=job.tenant,
                  job=job.job_id, slot=slot, wait_s=round(wait_s, 6))
        n_ok = n_failed = 0
        token = record.token
        if token is None:  # pragma: no cover - set before the slot runs us
            raise ServeError(f"job {job.job_id} has no cancel token")
        parent = conn.span if conn is not None else None
        with span(obs_names.SPAN_JOB, parent=parent, tenant=job.tenant,
                  job=job.job_id, slot=slot):
            for seq, cell in enumerate(job.cells):
                if token.cancelled:
                    return n_ok, n_failed, token.reason
                try:
                    with span(obs_names.SPAN_SERVE_CELL, cell=cell.label):
                        payloads, _ = await asyncio.to_thread(
                            run_cells, [cell], job.options, self._policy,
                            token)
                    payload = payloads[0]
                except JobCancelled as exc:
                    return n_ok, n_failed, exc.reason
                except Exception as exc:  # runner bug or misconfiguration
                    payload = None
                    _OBS.error(obs_names.EVT_JOB_FAILED, tenant=job.tenant,
                               job=job.job_id, cell=cell.label,
                               error=f"{type(exc).__name__}: {exc}")
                status = "ok" if payload is not None else "failed"
                if payload is not None:
                    n_ok += 1
                else:
                    n_failed += 1
                record.cells_done += 1
                if conn is not None:
                    await conn.send(protocol.cell_result(
                        job.request_id, job.job_id, seq, len(job.cells),
                        cell.label, status, payload))
        return n_ok, n_failed, ""
