"""The asyncio experiment server: connections, workers, streaming.

One process, one event loop, three kinds of task:

* the **listener** (TCP on ``host:port`` or a Unix socket at ``path``)
  accepts connections and runs one handler task per client;
* **handler tasks** speak the JSONL protocol: handshake, then a loop of
  ``submit`` / ``status`` / ``bye`` / ``shutdown`` messages.  Admission
  decisions are made inline (the scheduler is pure and the event loop
  is single-threaded, so no locking); accepted jobs are queued and a
  condition variable wakes the workers;
* **worker tasks** (``slots`` of them) pull jobs in weighted-fair order
  and execute each cell through :func:`repro.runner.run_cells` inside
  ``asyncio.to_thread``, so the event loop keeps serving other tenants
  while a simulation runs.  Results stream back per cell as they
  complete; a client that disconnected mid-job simply stops receiving
  — the job still runs to completion and its artifacts stay in the
  store (shedding happens at admission, never mid-run).

Execution reuses the runner's whole fault-tolerance stack: the per-job
:class:`~repro.runner.ExecutionPolicy` carries the server's retry
budget, backoff, and per-cell timeout, and ``keep_going`` degradation
turns an exhausted cell into a ``failed`` cell message instead of a
dead worker.  With ``use_cache`` on (the default) served jobs read and
write the same content-addressed artifact store as batch runs — a job
the batch path already computed is served from cache, bit-identically.

Telemetry is fully concurrent-safe: each job runs under a
context-local :class:`repro.obs.capture` (a :mod:`contextvars`
override that travels into ``asyncio.to_thread``), so any number of
slots can execute traced cells at once without interleaving a single
event — every absorbed record is tagged with its tenant and job, and
each job's span subtree hangs off the connection span that admitted
it.  The ``status``/``metrics`` frames expose the live stats plane:
queue depths, per-tenant virtual time, the in-flight job table, and a
Prometheus text exposition of the registry.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from dataclasses import dataclass, field
from typing import Any

from .. import __version__, obs
from ..errors import ProtocolError, ServeError
from ..obs import names as obs_names
from ..obs.prom import CONTENT_TYPE, render_prometheus
from ..obs.trace import Span, span
from ..runner import ExecutionPolicy, run_cells
from . import protocol
from .scheduler import AdmissionConfig, FairScheduler, Job

#: Server telemetry scope (off until obs.configure()).
_OBS = obs.scope("serve.server")

#: Queue-depth histogram buckets (jobs, not seconds).
QUEUE_DEPTH_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
                       128.0, 256.0)

#: A connection this deep into malformed frames is garbage, not a
#: client with a bug; it gets disconnected.
MAX_MALFORMED_PER_CONN = 32


@dataclass(frozen=True)
class ServeConfig:
    """One server instance: where it listens and how it executes.

    Exactly one of ``path`` (Unix socket) or ``host``/``port`` (TCP) is
    used; ``path`` wins when both are set.  ``port=0`` binds an
    ephemeral port (see :attr:`ExperimentServer.address`).
    """

    host: str = "127.0.0.1"
    port: int = 0
    path: str | None = None
    slots: int = 2
    retries: int = 1
    timeout_s: float | None = None
    use_cache: bool = True
    cache_dir: str | None = None
    #: ``ExecutionPolicy.jobs`` of each job's run (1 = in-thread serial;
    #: >1 spins a multiprocessing pool per multi-cell job).
    jobs_per_run: int = 1
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    weights: tuple[tuple[str, float], ...] = ()
    max_cells_per_job: int = 16
    #: Whether a client ``shutdown`` message may drain-stop the server.
    allow_remote_shutdown: bool = True

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ServeError("slots must be >= 1")
        if self.jobs_per_run < 1:
            raise ServeError("jobs_per_run must be >= 1")
        if self.max_cells_per_job < 1:
            raise ServeError("max_cells_per_job must be >= 1")

    def policy(self) -> ExecutionPolicy:
        """The execution policy every served job runs under."""
        return ExecutionPolicy(jobs=self.jobs_per_run,
                               use_cache=self.use_cache,
                               cache_dir=self.cache_dir,
                               retries=self.retries,
                               timeout_s=self.timeout_s,
                               keep_going=True)


class _Connection:
    """One client link: serialised writes + liveness tracking."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.tenant = ""
        self.closed = False
        #: The connection's open span; jobs admitted on this link hang
        #: their span subtrees off it (the job runs in a worker task,
        #: so the parent must travel explicitly, not via context).
        self.span: Span | None = None
        self._lock = asyncio.Lock()

    async def send(self, message: dict[str, Any]) -> bool:
        """Write one frame; False (never raises) on a dead connection."""
        if self.closed:
            return False
        frame = protocol.encode_message(message)
        try:
            async with self._lock:
                self.writer.write(frame)
                await self.writer.drain()
        except (ConnectionError, OSError):
            self.closed = True
            return False
        return True

    async def close(self) -> None:
        self.closed = True
        with contextlib.suppress(ConnectionError, OSError):
            self.writer.close()
            await self.writer.wait_closed()


class ExperimentServer:
    """Multi-tenant front-end over the cell runner (see module doc)."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.scheduler = FairScheduler(admission=self.config.admission,
                                       weights=dict(self.config.weights))
        self._policy = self.config.policy()
        self._server: asyncio.AbstractServer | None = None
        self._cond: asyncio.Condition = asyncio.Condition()
        self._done: asyncio.Event = asyncio.Event()
        self._stop_workers = False
        self._workers: list[asyncio.Task[None]] = []
        self._job_conns: dict[str, _Connection] = {}
        #: Live view of running jobs (job_id -> row), for the stats
        #: frame; single event loop, so plain dict updates suffice.
        self._active_jobs: dict[str, dict[str, Any]] = {}
        self._job_counter = 0
        self._started_at = 0.0

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and spawn the worker tasks."""
        if self._server is not None:
            raise ServeError("server already started")
        if self.config.path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle, path=self.config.path,
                limit=protocol.MAX_LINE_BYTES + 2)
        else:
            self._server = await asyncio.start_server(
                self._handle, host=self.config.host, port=self.config.port,
                limit=protocol.MAX_LINE_BYTES + 2)
        self._started_at = time.monotonic()
        self._workers = [asyncio.create_task(self._worker(slot),
                                             name=f"serve-worker-{slot}")
                         for slot in range(self.config.slots)]
        _OBS.info(obs_names.EVT_SERVER_START, address=str(self.address),
                  slots=self.config.slots,
                  max_queued=self.config.admission.max_queued_total)

    @property
    def address(self) -> str:
        """``unix:<path>`` or ``host:port`` (the *bound* port)."""
        if self.config.path is not None:
            return f"unix:{self.config.path}"
        if self._server is not None and self._server.sockets:
            host, port = self._server.sockets[0].getsockname()[:2]
            return f"{host}:{port}"
        return f"{self.config.host}:{self.config.port}"

    async def serve_forever(self) -> None:
        """Block until a drain shutdown completes."""
        if self._server is None:
            await self.start()
        await self._done.wait()

    async def request_shutdown(self) -> None:
        """Begin a graceful drain: shed new work, finish admitted work.

        Every job admitted before this call still runs to completion
        and streams its results; only *new* submits are shed (reason
        ``stopping``).  The server exits when the queue is empty and
        nothing is in flight.
        """
        self.scheduler.draining = True
        async with self._cond:
            self._maybe_finish_drain()
            self._cond.notify_all()

    async def aclose(self) -> None:
        """Drain-stop and wait for the workers and listener to exit."""
        await self.request_shutdown()
        await self._done.wait()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)

    def _maybe_finish_drain(self) -> None:
        """Under ``_cond``: complete the drain when no work remains."""
        if (self.scheduler.draining and not self._done.is_set()
                and self.scheduler.queue_depth == 0
                and self.scheduler.in_flight == 0):
            self._stop_workers = True
            if self._server is not None:
                self._server.close()
            _OBS.info(obs_names.EVT_SERVER_STOP,
                      uptime_s=round(time.monotonic() - self._started_at, 3),
                      **{k: v for k, v in self.scheduler.stats().items()
                         if isinstance(v, (int, bool))})
            self._done.set()

    # -- connection handling --------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        conn = _Connection(writer)
        malformed = 0
        try:
            try:
                frame = await reader.readline()
                conn.tenant = protocol.parse_hello(protocol.decode_line(frame))
            except (ProtocolError, ValueError) as exc:
                await conn.send(protocol.error(str(exc)))
                return
            _OBS.info(obs_names.EVT_CLIENT_CONNECT, tenant=conn.tenant)
            await conn.send(protocol.welcome(__version__))
            with span(obs_names.SPAN_CONNECTION, tenant=conn.tenant) as conn_span:
                conn.span = conn_span
                while True:
                    try:
                        frame = await reader.readline()
                    except ValueError:
                        # Overlong line: the stream is desynchronised and
                        # cannot be safely re-framed — drop the client.
                        await conn.send(protocol.error("frame too long"))
                        break
                    if not frame:
                        break  # EOF
                    try:
                        message = protocol.decode_line(frame)
                        keep_open = await self._dispatch(conn, message)
                    except ProtocolError as exc:
                        malformed += 1
                        self._note_malformed(conn, exc)
                        await conn.send(protocol.error(
                            str(exc), request_id=self._request_id_of(frame)))
                        if malformed >= MAX_MALFORMED_PER_CONN:
                            break
                        continue
                    if not keep_open:
                        break
        finally:
            await conn.close()
            _OBS.info(obs_names.EVT_CLIENT_DISCONNECT, tenant=conn.tenant,
                      malformed=malformed)

    @staticmethod
    def _request_id_of(frame: bytes) -> str | None:
        """Best-effort request id from a frame that failed validation."""
        import json

        try:
            parsed = json.loads(frame.decode("utf-8", "replace"))
        except json.JSONDecodeError:
            return None
        if isinstance(parsed, dict) and isinstance(parsed.get("id"), str):
            return parsed["id"]
        return None

    def _note_malformed(self, conn: _Connection, exc: ProtocolError) -> None:
        if _OBS.enabled:
            _OBS.warning(obs_names.EVT_REQUEST_MALFORMED, tenant=conn.tenant,
                         error=str(exc))
            _OBS.counter(obs_names.MET_REQUESTS_MALFORMED).inc()

    async def _dispatch(self, conn: _Connection,
                        message: dict[str, Any]) -> bool:
        """Handle one decoded client message; False closes the link."""
        kind = message["type"]
        if kind not in protocol.CLIENT_TYPES:
            raise ProtocolError(f"unexpected message type {kind!r}")
        if kind == protocol.BYE:
            return False
        if kind == protocol.STATUS:
            await conn.send(protocol.stats(self._stats_body()))
            return True
        if kind == protocol.METRICS:
            await conn.send(protocol.metrics(self._render_metrics(),
                                             CONTENT_TYPE))
            return True
        if kind == protocol.SHUTDOWN:
            if not self.config.allow_remote_shutdown:
                raise ProtocolError("shutdown is disabled on this server")
            await conn.send({"type": protocol.STOPPING})
            await self.request_shutdown()
            return True
        await self._submit(conn, message)
        return True

    def _stats_body(self) -> dict[str, Any]:
        """The live stats plane: scheduler view + in-flight job table +
        registered-name registry metrics (counters and gauges only —
        histograms travel on the ``metrics`` frame, where cumulative
        buckets have a standard wire form)."""
        now = time.monotonic()
        body = self.scheduler.stats()
        body["address"] = self.address
        body["uptime_s"] = round(now - self._started_at, 3)
        body["in_flight_jobs"] = [
            {"job": job_id, "tenant": row["tenant"], "slot": row["slot"],
             "cells": row["cells"],
             "running_s": round(now - row["started_at"], 3)}
            for job_id, row in sorted(self._active_jobs.items())]
        st = obs.base_state()
        if st is not None:
            snapshot = st.registry.snapshot()
            registered = obs_names.METRIC_NAMES
            body["metrics"] = {
                kind: {name: value
                       for name, value in snapshot.get(kind, {}).items()
                       if name.rpartition(".")[2] in registered}
                for kind in ("counters", "gauges")}
        return body

    def _render_metrics(self) -> str:
        """The Prometheus exposition: registry snapshot (when telemetry
        is on) plus live gauges synthesised from the scheduler — the
        latter exist even on an untraced server."""
        st = obs.base_state()
        snapshot = st.registry.snapshot() if st is not None else {}
        live: dict[str, float] = {
            f"serve.server.{obs_names.MET_QUEUE_DEPTH_NOW}":
                float(self.scheduler.queue_depth),
            f"serve.server.{obs_names.MET_IN_FLIGHT_NOW}":
                float(self.scheduler.in_flight),
            f"serve.server.{obs_names.MET_UPTIME_S}":
                round(time.monotonic() - self._started_at, 3),
        }
        for name, row in self.scheduler.stats()["tenants"].items():
            live[f"serve.tenant.{name}.{obs_names.MET_TENANT_VTIME}"] = \
                float(row["vtime"])
        return render_prometheus(snapshot, extra_gauges=live)

    async def _submit(self, conn: _Connection,
                      message: dict[str, Any]) -> None:
        request_id = message.get("id")
        if not isinstance(request_id, str) or not request_id:
            raise ProtocolError("submit needs a string 'id' field")
        spec = protocol.JobSpec.from_dict(message.get("spec"))
        cells, options = spec.compile()
        if len(cells) > self.config.max_cells_per_job:
            raise ProtocolError(
                f"job expands to {len(cells)} cells; this server caps "
                f"jobs at {self.config.max_cells_per_job}")
        self._job_counter += 1
        job = Job(job_id=f"j{self._job_counter}", request_id=request_id,
                  tenant=conn.tenant, spec=spec, cells=cells,
                  options=options, enqueued_at=time.monotonic())
        admission = self.scheduler.submit(job)
        if _OBS.enabled:
            _OBS.histogram(obs_names.MET_QUEUE_DEPTH,
                           QUEUE_DEPTH_BUCKETS).observe(admission.queue_depth)
        if not admission.accepted:
            if _OBS.enabled:
                _OBS.warning(obs_names.EVT_JOB_SHED, tenant=job.tenant,
                             job=job.job_id, reason=admission.reason,
                             retry_after_s=round(admission.retry_after_s, 4))
                _OBS.counter(obs_names.MET_JOBS_SHED).inc()
            await conn.send(protocol.shed(request_id, admission.reason,
                                          admission.retry_after_s))
            return
        self._job_conns[job.job_id] = conn
        if _OBS.enabled:
            _OBS.info(obs_names.EVT_JOB_ADMITTED, tenant=job.tenant,
                      job=job.job_id, cells=len(cells),
                      queue_depth=admission.queue_depth)
            _OBS.counter(obs_names.MET_JOBS_ADMITTED).inc()
        await conn.send(protocol.accepted(request_id, job.job_id,
                                          admission.queue_depth,
                                          admission.tenant_depth))
        async with self._cond:
            self._cond.notify_all()

    # -- execution ------------------------------------------------------
    async def _worker(self, slot: int) -> None:
        while True:
            async with self._cond:
                while not self.scheduler.has_work() and not self._stop_workers:
                    await self._cond.wait()
                if self._stop_workers and not self.scheduler.has_work():
                    return
                job = self.scheduler.next_job()
            if job is None:  # pragma: no cover - racing another slot
                continue
            await self._run_job(job, slot)
            async with self._cond:
                # A freed in-flight slot may make a capped tenant
                # eligible again, and a drain may now be complete.
                self._maybe_finish_drain()
                self._cond.notify_all()

    async def _run_job(self, job: Job, slot: int) -> None:
        """Execute one admitted job on this worker slot.

        The whole job runs under a context-local :class:`obs.capture`,
        so concurrent slots record into isolated buffers; the capture's
        events, metrics, and spans are folded back into the server's
        base state afterwards, tagged with the tenant and job.  The
        job span hangs off the admitting connection's span (an explicit
        parent — the connection lives in a different task), and each
        cell's subtree — including the runner spans recorded inside
        ``asyncio.to_thread`` — nests under a ``serve.cell`` span.
        """
        job.started_at = time.monotonic()
        wait_s = job.started_at - job.enqueued_at
        conn = self._job_conns.pop(job.job_id, None)
        self._active_jobs[job.job_id] = {
            "tenant": job.tenant, "slot": slot, "cells": len(job.cells),
            "started_at": job.started_at}
        try:
            with obs.capture(obs.current_config()) as cap:
                n_ok, n_failed = await self._execute_job(job, slot, conn,
                                                         wait_s)
            obs.absorb(cap.events, cap.metrics,
                       tag={"tenant": job.tenant, "job": job.job_id},
                       spans=cap.spans)
        finally:
            self._active_jobs.pop(job.job_id, None)
        service_s = time.monotonic() - job.started_at
        ok = n_failed == 0
        self.scheduler.finish(job, service_s, wait_s=wait_s, ok=ok)
        if _OBS.enabled:
            outcome = {"tenant": job.tenant, "job": job.job_id,
                       "cells": len(job.cells), "failed": n_failed,
                       "wait_s": round(wait_s, 6),
                       "service_s": round(service_s, 6)}
            if ok:
                _OBS.info(obs_names.EVT_JOB_COMPLETED, **outcome)
                _OBS.counter(obs_names.MET_JOBS_COMPLETED).inc()
            else:
                _OBS.warning(obs_names.EVT_JOB_FAILED, **outcome)
                _OBS.counter(obs_names.MET_JOBS_FAILED).inc()
            _OBS.histogram(obs_names.MET_JOB_WAIT_S).observe(wait_s)
            _OBS.histogram(obs_names.MET_JOB_SERVICE_S).observe(service_s)
            tenant_scope = obs.scope(f"serve.tenant.{job.tenant}")
            tenant_scope.histogram(obs_names.MET_JOB_WAIT_S).observe(wait_s)
            tenant_scope.histogram(obs_names.MET_JOB_SERVICE_S).observe(service_s)
        if conn is not None:
            await conn.send(protocol.done(
                job.request_id, job.job_id, "ok" if ok else "failed",
                n_ok, n_failed, wait_s, service_s))

    async def _execute_job(self, job: Job, slot: int,
                           conn: _Connection | None,
                           wait_s: float) -> tuple[int, int]:
        """The captured body of one job: cell loop + streaming."""
        _OBS.info(obs_names.EVT_JOB_STARTED, tenant=job.tenant,
                  job=job.job_id, slot=slot, wait_s=round(wait_s, 6))
        n_ok = n_failed = 0
        parent = conn.span if conn is not None else None
        with span(obs_names.SPAN_JOB, parent=parent, tenant=job.tenant,
                  job=job.job_id, slot=slot):
            for seq, cell in enumerate(job.cells):
                try:
                    with span(obs_names.SPAN_SERVE_CELL, cell=cell.label):
                        payloads, _ = await asyncio.to_thread(
                            run_cells, [cell], job.options, self._policy)
                    payload = payloads[0]
                except Exception as exc:  # runner bug or misconfiguration
                    payload = None
                    _OBS.error(obs_names.EVT_JOB_FAILED, tenant=job.tenant,
                               job=job.job_id, cell=cell.label,
                               error=f"{type(exc).__name__}: {exc}")
                status = "ok" if payload is not None else "failed"
                if payload is not None:
                    n_ok += 1
                else:
                    n_failed += 1
                if conn is not None:
                    await conn.send(protocol.cell_result(
                        job.request_id, job.job_id, seq, len(job.cells),
                        cell.label, status, payload))
        return n_ok, n_failed
