"""repro.serve — the evaluator as a long-running multi-tenant server.

Everything below :mod:`repro.experiments` is batch: one CLI
invocation, one grid, one manifest.  This package adds the service
tier the ROADMAP calls for — many concurrent clients submit experiment
requests, a fair scheduler multiplexes them onto the existing
fault-tolerant :mod:`repro.runner` machinery, and results stream back
incrementally over the wire:

* :mod:`repro.serve.protocol` — JSONL-framed request/response messages
  and the schema-validated :class:`JobSpec` that compiles to the same
  :class:`~repro.runner.Cell` objects the batch path executes, so a
  served result is **bit-identical** to ``domino-repro run`` output and
  warms the same artifact store;
* :mod:`repro.serve.scheduler` — weighted fair queueing across tenants
  with admission control: bounded queues, per-tenant in-flight caps,
  and load shedding with deterministic retry-after hints
  (:mod:`repro.backoff`) when saturated;
* :mod:`repro.serve.server` — the asyncio front-end: TCP or Unix
  socket listener, per-connection protocol handling, worker slots that
  execute admitted jobs through :func:`repro.runner.run_cells`, and
  full :mod:`repro.obs` instrumentation (queue depth, admission
  decisions, per-tenant wait/service histograms);
* :mod:`repro.serve.client` — a small asyncio client used by tests,
  the CLI, and the load generator;
* :mod:`repro.serve.loadgen` — a seeded Poisson-arrival multi-client
  load generator that drives the server to saturation and emits a
  BENCH-style JSON report (throughput, p50/p99 latency, shed rate,
  Jain fairness index), so overload behaviour is itself a measured,
  regression-gated scenario (``benchmarks/bench_serve.py``).

Jobs have a full lifecycle: clients can cancel them mid-run
(``cancel`` frames), attach per-job deadlines, poll progress
(``job_status``), and opt into cancel-on-disconnect; tenants can be
metered by simulated-access quotas; and the server's read/write
boundary can be wrapped in seeded network chaos
(:mod:`repro.faults`).  See ``docs/SERVING.md`` for the wire protocol,
the job-lifecycle state machine, and the fairness and admission
semantics, and ``docs/ROBUSTNESS.md`` for the partition-chaos drills.
"""

from .protocol import PROTO_VERSION, TERMINAL_STATUSES, JobSpec
from .scheduler import Admission, AdmissionConfig, FairScheduler, Job
from .server import ExperimentServer, ServeConfig
from .client import JobResult, ServeClient, parse_address
from .loadgen import LoadGenConfig, jain_index, run_loadgen

__all__ = [
    "Admission",
    "AdmissionConfig",
    "ExperimentServer",
    "FairScheduler",
    "Job",
    "JobResult",
    "JobSpec",
    "LoadGenConfig",
    "PROTO_VERSION",
    "ServeClient",
    "ServeConfig",
    "TERMINAL_STATUSES",
    "jain_index",
    "parse_address",
    "run_loadgen",
]
