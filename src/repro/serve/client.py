"""Asyncio client for the experiment server.

A deliberately thin wrapper over the JSONL protocol, shared by the CLI
(``domino-repro serve --submit`` style usage), the test suite, and the
load generator.  One client drives one connection and one job at a
time, which keeps the reply stream trivially ordered: ``submit`` is
answered by ``accepted`` or ``shed``, an accepted job streams ``cell``
frames and finishes with ``done``.

The raw ``send``/``recv`` frame methods are public on purpose — the
chaos side of the load generator uses them to misbehave (malformed
frames, mid-stream disconnects, glacial reads) in ways the high-level
helpers would never produce.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

from ..errors import ProtocolError
from . import protocol


@dataclass
class CellResult:
    """One streamed cell frame of an accepted job."""

    seq: int
    label: str
    status: str
    payload: dict[str, Any] | None


@dataclass
class JobResult:
    """Everything one submit produced, shed or served.

    ``status`` is ``ok`` / ``failed`` for completed jobs, ``shed`` for
    admission refusals (with ``reason`` and ``retry_after_s`` set), and
    ``error`` when the server answered with an error frame.
    """

    request_id: str
    accepted: bool
    status: str = ""
    job_id: str = ""
    reason: str = ""
    retry_after_s: float = 0.0
    wait_s: float = 0.0
    service_s: float = 0.0
    cells: list[CellResult] = field(default_factory=list)

    @property
    def payloads(self) -> list[dict[str, Any] | None]:
        """Cell payloads in stream order (None for failed cells)."""
        return [cell.payload for cell in self.cells]


def parse_address(address: str) -> tuple[str | None, str, int]:
    """``unix:<path>``, ``host:port``, or ``[v6]:port`` -> (unix_path, host, port).

    IPv6 literals must be bracketed (``[::1]:9000``) — a bare ``::1:9000``
    is ambiguous, since every colon is a candidate separator.  The port
    is required and must be a decimal number in ``1..65535``.
    """
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise ProtocolError("empty unix socket path")
        return path, "", 0
    if address.startswith("["):
        end = address.find("]")
        if end < 0:
            raise ProtocolError(
                f"unterminated IPv6 literal in address {address!r}")
        host = address[1:end]
        rest = address[end + 1:]
        if not host or not rest.startswith(":"):
            raise ProtocolError(
                f"address {address!r} is not of the form [host]:port")
        port_text = rest[1:]
    else:
        host, sep, port_text = address.rpartition(":")
        if not sep or not host:
            raise ProtocolError(
                f"address {address!r} is neither unix:<path> nor host:port")
        if ":" in host:
            raise ProtocolError(
                f"IPv6 literal in address {address!r} must be bracketed, "
                f"e.g. [::1]:9000")
    if not port_text.isdigit():
        raise ProtocolError(f"bad port in address {address!r}")
    port = int(port_text)
    if not 0 < port < 65536:
        raise ProtocolError(f"port out of range in address {address!r}")
    return None, host, port


class ServeClient:
    """One authenticated connection to an :class:`ExperimentServer`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, tenant: str) -> None:
        self.reader = reader
        self.writer = writer
        self.tenant = tenant
        self.server_version = ""

    @classmethod
    async def connect(cls, address: str, tenant: str) -> "ServeClient":
        """Dial, handshake, and return a ready client."""
        path, host, port = parse_address(address)
        limit = protocol.MAX_LINE_BYTES + 2
        if path is not None:
            reader, writer = await asyncio.open_unix_connection(path,
                                                                limit=limit)
        else:
            reader, writer = await asyncio.open_connection(host, port,
                                                           limit=limit)
        client = cls(reader, writer, tenant)
        await client.send(protocol.hello(tenant))
        reply = await client.recv()
        if reply["type"] != protocol.WELCOME:
            await client.close(polite=False)
            raise ProtocolError(
                f"handshake refused: {reply.get('error', reply['type'])}")
        client.server_version = str(reply.get("server", ""))
        return client

    # -- frames ---------------------------------------------------------
    async def send(self, message: dict[str, Any]) -> None:
        self.writer.write(protocol.encode_message(message))
        await self.writer.drain()

    async def send_raw(self, frame: bytes) -> None:
        """Write arbitrary bytes — the chaos clients' backdoor."""
        self.writer.write(frame)
        await self.writer.drain()

    async def recv(self) -> dict[str, Any]:
        frame = await self.reader.readline()
        if not frame:
            raise ProtocolError("server closed the connection")
        return protocol.decode_line(frame)

    # -- high-level calls -----------------------------------------------
    async def submit(self, spec: protocol.JobSpec | dict[str, Any],
                     request_id: str, deadline_s: float | None = None,
                     cancel_on_disconnect: bool | None = None) -> None:
        """Send one submit frame (pair with :meth:`collect`)."""
        await self.send(protocol.submit(
            request_id, spec, deadline_s=deadline_s,
            cancel_on_disconnect=cancel_on_disconnect))

    async def run_job(self, spec: protocol.JobSpec | dict[str, Any],
                      request_id: str) -> JobResult:
        """Submit one job and collect its full reply stream."""
        await self.submit(spec, request_id)
        return await self.collect(request_id)

    async def collect(self, request_id: str) -> JobResult:
        """Drain the reply stream of an already-sent submit."""
        reply = await self.recv()
        kind = reply["type"]
        if kind == protocol.SHED:
            return JobResult(request_id=request_id, accepted=False,
                             status="shed", reason=str(reply.get("reason", "")),
                             retry_after_s=float(reply.get("retry_after_s", 0.0)))
        if kind == protocol.ERROR:
            return JobResult(request_id=request_id, accepted=False,
                             status="error", reason=str(reply.get("error", "")))
        if kind != protocol.ACCEPTED:
            raise ProtocolError(f"unexpected submit reply {kind!r}")
        return await self.stream(request_id,
                                 job_id=str(reply.get("job", "")))

    async def stream(self, request_id: str, job_id: str = "") -> JobResult:
        """Drain cell/done frames of a job already known to be accepted."""
        result = JobResult(request_id=request_id, accepted=True,
                           job_id=job_id)
        while True:
            frame = await self.recv()
            kind = frame["type"]
            if kind == protocol.CELL:
                result.cells.append(CellResult(
                    seq=int(frame.get("seq", 0)),
                    label=str(frame.get("cell", "")),
                    status=str(frame.get("status", "")),
                    payload=frame.get("payload")))
            elif kind == protocol.DONE:
                result.status = str(frame.get("status", ""))
                result.reason = str(frame.get("reason", ""))
                result.wait_s = float(frame.get("wait_s", 0.0))
                result.service_s = float(frame.get("service_s", 0.0))
                return result
            elif kind == protocol.CANCELLING:
                # Ack of a cancel sent mid-stream; the terminal state
                # still arrives as a done frame.
                result.reason = str(frame.get("reason", ""))
            elif kind == protocol.JOB_STATUS:
                # Interleaved poll reply (a cancel-minded caller may
                # check progress mid-stream); not a terminal frame.
                continue
            elif kind == protocol.ERROR:
                result.status = "error"
                result.reason = str(frame.get("error", ""))
                return result
            else:
                raise ProtocolError(f"unexpected stream frame {kind!r}")

    async def cancel(self, job_id: str,
                     request_id: str | None = None) -> None:
        """Request cancellation of an in-flight job (fire-and-forget).

        The ``cancelling`` ack and the terminal ``done`` frame arrive
        on the job's reply stream; :meth:`stream` tolerates both.
        """
        await self.send(protocol.cancel(job_id, request_id))

    async def job_status(self, job_id: str) -> dict[str, Any]:
        """Poll one job's lifecycle state and progress.

        Only valid when no job stream is being drained on this
        connection — poll from a second connection (same tenant)
        while a submit streams on the first.
        """
        await self.send(protocol.job_status_request(job_id))
        reply = await self.recv()
        if reply["type"] == protocol.ERROR:
            raise ProtocolError(
                f"job_status refused: {reply.get('error', '')}")
        if reply["type"] != protocol.JOB_STATUS:
            raise ProtocolError(
                f"unexpected job_status reply {reply['type']!r}")
        return reply

    async def status(self) -> dict[str, Any]:
        """The server's scheduler/stats snapshot."""
        await self.send({"type": protocol.STATUS})
        reply = await self.recv()
        if reply["type"] != protocol.STATS:
            raise ProtocolError(f"unexpected status reply {reply['type']!r}")
        return reply

    async def metrics(self) -> dict[str, Any]:
        """The server's Prometheus exposition (``text`` + ``content_type``)."""
        await self.send({"type": protocol.METRICS})
        reply = await self.recv()
        if reply["type"] != protocol.METRICS:
            raise ProtocolError(f"unexpected metrics reply {reply['type']!r}")
        return reply

    async def shutdown(self) -> None:
        """Ask the server to drain and exit (admin clients only)."""
        await self.send({"type": protocol.SHUTDOWN})
        reply = await self.recv()
        if reply["type"] != protocol.STOPPING:
            raise ProtocolError(
                f"shutdown refused: {reply.get('error', reply['type'])}")

    async def close(self, polite: bool = True) -> None:
        """Say goodbye (unless impolite) and tear the connection down."""
        import contextlib

        with contextlib.suppress(ConnectionError, OSError, ProtocolError):
            if polite:
                await self.send({"type": protocol.BYE})
            self.writer.close()
            await self.writer.wait_closed()

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()
