"""Weighted fair queueing and admission control for the serve tier.

The scheduler is deliberately **pure**: no clock reads, no asyncio, no
telemetry — every decision is a function of the calls it has seen
(submit / next_job / finish) and the service times the caller reports.
The server wraps it with wall-clock timestamps and obs emission; tests
drive it with synthetic service times and assert exact schedules.

Fairness is start-time weighted fair queueing over *served work*: each
tenant carries a virtual time — cumulative service seconds divided by
its weight — and the next free worker slot always goes to the eligible
backlogged tenant with the lowest virtual time (ties break on the
tenant name, so schedules are deterministic).  A global virtual clock —
the largest virtual time ever dispatched — advances monotonically with
served work; a tenant entering (or returning from idle) has its virtual
time clamped up to that clock, so neither sleeping nor arriving late
banks credit that could later starve active tenants.

Admission control is three bounds, checked in order: a global queue
cap (sheds with ``server_saturated``), a per-tenant queue cap
(``tenant_queue_full``), and — at dispatch, not admission — a
per-tenant in-flight cap that keeps one tenant from occupying every
worker slot no matter how deep its queue is.  Sheds are never silent:
each carries a ``retry_after_s`` hint from the shared deterministic
backoff curve (:mod:`repro.backoff`), growing with the tenant's
consecutive-shed streak so a client hammering a saturated server is
pushed back harder each time.

On top of the slot bounds sits an optional per-tenant **quota metered
in simulated accesses** — the unit of actual engine work, which queue
slots cannot see (one 2M-access job outweighs a hundred 1k-access
jobs).  It is a token bucket: capacity ``quota_accesses``, refilled
continuously over ``quota_window_s``.  Admission *reserves*
``min(spec.estimated_accesses, capacity)`` against the bucket and
sheds with ``quota_exhausted`` (retry hint = honest time-to-refill)
when the bucket cannot cover it; while a job runs the server's
watchdog calls :meth:`FairScheduler.overdrawn` with the live progress
counter so a job whose estimate lied is cancelled mid-run; at
:meth:`FairScheduler.finish` the reservation is released and the
tenant is charged the accesses **actually simulated** — a cancelled
job bills only the work it really did.  The balance may run negative
(bounded at one capacity) to absorb estimate error; it refills before
the tenant's next admission.

Admitted jobs can still leave the queue without running — a client
cancel or a server drain calls :meth:`FairScheduler.cancel_queued` —
and running jobs can finish with ``cancelled=True``; neither charges
vtime beyond the service actually rendered, so fairness always tracks
work done, not work promised.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

from ..backoff import backoff_delay
from ..errors import ServeError
from ..experiments.common import ExperimentOptions
from ..runner import Cell
from .protocol import JobSpec

#: Jitter domain for retry-after hints (decorrelated from runner retries).
SHED_SALT = "serve.shed"

#: Shed reasons (wire-visible).
REASON_SERVER_SATURATED = "server_saturated"
REASON_TENANT_QUEUE_FULL = "tenant_queue_full"
REASON_QUOTA_EXHAUSTED = "quota_exhausted"
REASON_STOPPING = "stopping"


@dataclass(frozen=True)
class AdmissionConfig:
    """Bounds and shed-hint shape for one server instance.

    ``quota_accesses`` turns on access metering: each tenant gets a
    token bucket of that many simulated accesses, refilled continuously
    over ``quota_window_s`` seconds.  Zero (the default) disables the
    quota and preserves slot-only admission.
    """

    max_queued_total: int = 64
    max_queued_per_tenant: int = 8
    max_in_flight_per_tenant: int = 2
    shed_base_s: float = 0.25
    shed_max_s: float = 8.0
    quota_accesses: int = 0
    quota_window_s: float = 60.0

    def __post_init__(self) -> None:
        for name in ("max_queued_total", "max_queued_per_tenant",
                     "max_in_flight_per_tenant"):
            if getattr(self, name) < 1:
                raise ServeError(f"{name} must be >= 1")
        if self.shed_base_s < 0 or self.shed_max_s < 0:
            raise ServeError("shed backoff delays must be >= 0")
        if self.quota_accesses < 0:
            raise ServeError("quota_accesses must be >= 0 (0 disables)")
        if self.quota_window_s <= 0:
            raise ServeError("quota_window_s must be positive")


@dataclass
class Job:
    """One admitted (or candidate) unit of work: a compiled spec."""

    job_id: str
    request_id: str
    tenant: str
    spec: JobSpec
    cells: list[Cell]
    options: ExperimentOptions
    #: Wall-clock bookkeeping, owned by the server (0.0 until set).
    enqueued_at: float = 0.0
    started_at: float = 0.0
    #: Lifecycle policy, parsed from the submit frame.
    deadline_s: float | None = None
    cancel_on_disconnect: bool = False
    #: Simulated accesses reserved against the tenant's quota bucket
    #: at admission (0 when the quota is disabled).
    reserved_accesses: int = 0


@dataclass(frozen=True)
class Admission:
    """Outcome of one submit: admitted, or shed with a retry hint."""

    accepted: bool
    reason: str = ""
    retry_after_s: float = 0.0
    queue_depth: int = 0
    tenant_depth: int = 0


@dataclass
class TenantState:
    """Everything the scheduler knows about one tenant."""

    name: str
    weight: float = 1.0
    queue: deque[Job] = field(default_factory=deque)
    in_flight: int = 0
    #: Served seconds / weight — the WFQ virtual clock.
    vtime: float = 0.0
    shed_streak: int = 0
    admitted: int = 0
    shed: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    served_s: float = 0.0
    waited_s: float = 0.0
    #: Token-bucket state (meaningful only when the quota is enabled).
    quota_balance: float = 0.0
    quota_updated_at: float = 0.0
    reserved_accesses: int = 0
    accesses_charged: int = 0

    @property
    def busy(self) -> bool:
        return bool(self.queue) or self.in_flight > 0

    def to_dict(self) -> dict[str, Any]:
        return {"weight": self.weight, "queued": len(self.queue),
                "in_flight": self.in_flight, "vtime": round(self.vtime, 6),
                "admitted": self.admitted, "shed": self.shed,
                "completed": self.completed, "failed": self.failed,
                "cancelled": self.cancelled,
                "served_s": round(self.served_s, 6),
                "waited_s": round(self.waited_s, 6),
                "quota_balance": round(self.quota_balance, 2),
                "reserved_accesses": self.reserved_accesses,
                "accesses_charged": self.accesses_charged}


class FairScheduler:
    """Pure WFQ + admission-control core (see module docstring)."""

    def __init__(self, admission: AdmissionConfig | None = None,
                 weights: Mapping[str, float] | None = None,
                 default_weight: float = 1.0) -> None:
        if default_weight <= 0:
            raise ServeError("default_weight must be > 0")
        self.admission = admission or AdmissionConfig()
        self._weights = dict(weights or {})
        for tenant, weight in self._weights.items():
            if weight <= 0:
                raise ServeError(f"tenant {tenant!r} weight must be > 0")
        self._default_weight = default_weight
        self._tenants: dict[str, TenantState] = {}
        #: Largest virtual time ever dispatched (monotone): the floor
        #: for tenants entering or returning from idle.
        self._vclock = 0.0
        self.draining = False

    # -- tenants --------------------------------------------------------
    def tenant(self, name: str) -> TenantState:
        state = self._tenants.get(name)
        if state is None:
            weight = self._weights.get(name, self._default_weight)
            state = self._tenants[name] = TenantState(
                name=name, weight=weight,
                quota_balance=float(self.admission.quota_accesses))
        return state

    # -- quota ----------------------------------------------------------
    @property
    def quota_enabled(self) -> bool:
        return self.admission.quota_accesses > 0

    def _refill(self, tenant: TenantState, now: float) -> None:
        """Continuous token-bucket refill up to capacity."""
        capacity = self.admission.quota_accesses
        elapsed = now - tenant.quota_updated_at
        if elapsed > 0:
            rate = capacity / self.admission.quota_window_s
            tenant.quota_balance = min(float(capacity),
                                       tenant.quota_balance + rate * elapsed)
        tenant.quota_updated_at = max(tenant.quota_updated_at, now)

    def _quota_shed_after_s(self, tenant: TenantState, needed: float) -> float:
        """Honest retry hint: seconds of refill until ``needed`` fits."""
        rate = self.admission.quota_accesses / self.admission.quota_window_s
        deficit = needed - (tenant.quota_balance - tenant.reserved_accesses)
        return min(max(deficit, 0.0) / rate, self.admission.quota_window_s)

    def overdrawn(self, job: Job, accesses_done: int, now: float = 0.0) -> bool:
        """Live metering: has ``job`` simulated more than its tenant can
        pay for?  True means the server should cancel it with
        ``quota_exhausted``.  Overrun beyond the admission reservation
        is tolerated only while the bucket has uncommitted balance."""
        if not self.quota_enabled:
            return False
        tenant = self.tenant(job.tenant)
        self._refill(tenant, now)
        overrun = accesses_done - job.reserved_accesses
        return overrun > 0 and overrun > (
            tenant.quota_balance - tenant.reserved_accesses)

    @property
    def queue_depth(self) -> int:
        return sum(len(t.queue) for t in self._tenants.values())

    @property
    def in_flight(self) -> int:
        return sum(t.in_flight for t in self._tenants.values())

    def _busy_min_vtime(self) -> float:
        busy = [t.vtime for t in self._tenants.values() if t.busy]
        return min(busy) if busy else 0.0

    # -- admission ------------------------------------------------------
    def submit(self, job: Job, now: float = 0.0) -> Admission:
        """Admit ``job`` to its tenant's queue, or shed with a hint.

        ``now`` (caller's clock, any monotone origin) drives the quota
        refill; irrelevant when the quota is disabled.
        """
        tenant = self.tenant(job.tenant)
        reason = ""
        reservation = 0
        if self.quota_enabled:
            self._refill(tenant, now)
            reservation = min(job.spec.estimated_accesses,
                              self.admission.quota_accesses)
        if self.draining:
            reason = REASON_STOPPING
        elif self.queue_depth >= self.admission.max_queued_total:
            reason = REASON_SERVER_SATURATED
        elif len(tenant.queue) >= self.admission.max_queued_per_tenant:
            reason = REASON_TENANT_QUEUE_FULL
        elif (self.quota_enabled and
              tenant.quota_balance - tenant.reserved_accesses < reservation):
            tenant.shed += 1
            # No streak escalation: a quota shed is the bucket doing its
            # job, not the server melting down, and the honest refill
            # time beats an exponential guess.
            return Admission(accepted=False, reason=REASON_QUOTA_EXHAUSTED,
                             retry_after_s=self._quota_shed_after_s(
                                 tenant, reservation),
                             queue_depth=self.queue_depth,
                             tenant_depth=len(tenant.queue))
        if reason:
            tenant.shed += 1
            retry_after = backoff_delay(
                tenant.name, tenant.shed_streak,
                base_s=self.admission.shed_base_s,
                max_s=self.admission.shed_max_s, salt=SHED_SALT)
            tenant.shed_streak += 1
            return Admission(accepted=False, reason=reason,
                             retry_after_s=retry_after,
                             queue_depth=self.queue_depth,
                             tenant_depth=len(tenant.queue))
        job.reserved_accesses = reservation
        tenant.reserved_accesses += reservation
        if not tenant.busy:
            # Entering or back from idle: clamp up to the virtual clock
            # (and the busy minimum, which can run slightly ahead of it
            # between a dispatch and its finish) so downtime never banks
            # scheduling credit against active tenants.
            tenant.vtime = max(tenant.vtime, self._vclock,
                               self._busy_min_vtime())
        tenant.queue.append(job)
        tenant.admitted += 1
        tenant.shed_streak = 0
        return Admission(accepted=True, queue_depth=self.queue_depth,
                         tenant_depth=len(tenant.queue))

    # -- dispatch -------------------------------------------------------
    def eligible_tenants(self) -> list[TenantState]:
        """Backlogged tenants currently under their in-flight cap."""
        cap = self.admission.max_in_flight_per_tenant
        return [t for t in self._tenants.values()
                if t.queue and t.in_flight < cap]

    def has_work(self) -> bool:
        return bool(self.eligible_tenants())

    def next_job(self) -> Job | None:
        """Pop the next job under WFQ order, or None when none eligible."""
        eligible = self.eligible_tenants()
        if not eligible:
            return None
        tenant = min(eligible, key=lambda t: (t.vtime, t.name))
        self._vclock = max(self._vclock, tenant.vtime)
        job = tenant.queue.popleft()
        tenant.in_flight += 1
        return job

    def cancel_queued(self, job_id: str) -> Job | None:
        """Remove a not-yet-started job from its tenant's queue.

        Returns the job (reservation released, counted ``cancelled``)
        or None when no queue holds ``job_id`` — it already started, or
        never existed; the caller disambiguates via its own registry.
        """
        for tenant in self._tenants.values():
            for job in tenant.queue:
                if job.job_id == job_id:
                    tenant.queue.remove(job)
                    tenant.reserved_accesses -= job.reserved_accesses
                    tenant.cancelled += 1
                    return job
        return None

    def finish(self, job: Job, service_s: float, wait_s: float = 0.0,
               ok: bool = True, cancelled: bool = False,
               accesses_done: int = 0, now: float = 0.0) -> None:
        """Charge a finished job's service time — and, with the quota
        on, the simulated accesses it *actually* performed — to its
        tenant, releasing the admission reservation.

        ``cancelled`` marks jobs that ended via cancel/deadline/quota/
        shutdown: they charge only work done and count in neither
        ``completed`` nor ``failed``.  The balance may go negative
        (clamped at minus one capacity) when actual work overran the
        reservation; it refills before the tenant admits again.
        """
        tenant = self.tenant(job.tenant)
        if tenant.in_flight < 1:
            raise ServeError(
                f"finish({job.job_id}) for tenant {job.tenant!r} "
                "with nothing in flight")
        tenant.in_flight -= 1
        tenant.vtime += max(service_s, 0.0) / tenant.weight
        tenant.served_s += max(service_s, 0.0)
        tenant.waited_s += max(wait_s, 0.0)
        if self.quota_enabled:
            capacity = self.admission.quota_accesses
            self._refill(tenant, now)
            tenant.reserved_accesses -= job.reserved_accesses
            tenant.quota_balance = max(tenant.quota_balance - accesses_done,
                                       -float(capacity))
            tenant.accesses_charged += accesses_done
        if cancelled:
            tenant.cancelled += 1
        elif ok:
            tenant.completed += 1
        else:
            tenant.failed += 1
        if self.queue_depth == 0 and self.in_flight == 0:
            # Fully idle: advance the clock over every tenant's charged
            # time, so the next busy period starts everyone level — no
            # tenant carries credit (or debt) across system idleness.
            self._vclock = max([self._vclock]
                               + [t.vtime for t in self._tenants.values()])

    # -- reporting ------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """JSON-ready snapshot (the ``status`` reply body)."""
        tenants = {name: t.to_dict()
                   for name, t in sorted(self._tenants.items())}
        return {
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
            "draining": self.draining,
            "admitted": sum(t.admitted for t in self._tenants.values()),
            "shed": sum(t.shed for t in self._tenants.values()),
            "completed": sum(t.completed for t in self._tenants.values()),
            "failed": sum(t.failed for t in self._tenants.values()),
            "cancelled": sum(t.cancelled for t in self._tenants.values()),
            "quota_accesses": self.admission.quota_accesses,
            "tenants": tenants,
        }
