"""Cells: the unit of schedulable, cacheable experiment work.

A :class:`Cell` names one independent simulation — e.g. *run the domino
prefetcher at degree 1 over the oltp trace* — plus the system
configuration it runs under.  Cells are frozen dataclasses so they can
be hashed, pickled to worker processes, and serialised into cache keys.

The cache key of a cell is a SHA-256 over a canonical JSON rendering of
everything that determines its result:

* :data:`CODE_VERSION` — a salt bumped whenever simulator or prefetcher
  semantics change in a way that invalidates previously cached results;
* the cell itself (kind, workload, prefetcher, effective degree,
  config overrides, extra params);
* the full resolved :class:`~repro.config.SystemConfig` (so any config
  change — even a default changing in code — produces a new key);
* the trace-shaping fields of
  :class:`~repro.experiments.common.ExperimentOptions`
  (``n_accesses``, ``warmup_frac``, ``seed``).

Execution-policy knobs (worker count, cache directory, retry budget,
timeout, fault plan) never enter the key: they affect *how* a cell
runs, not *what* it computes.  The same key doubles as the cell's
identity in checkpoint journals (:mod:`repro.runner.checkpoint`) — a
resumed run recomputes keys from its cell list and skips the journaled
ones — and as the unit of deterministic fault injection
(:mod:`repro.faults` rolls per ``(key, attempt)``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any

from ..config import SystemConfig, timing_config
from ..errors import RunnerError

#: Bump to invalidate every previously cached artifact (simulation
#: semantics changed).  Mirrored in the artifact payloads written by
#: :class:`repro.runner.store.ResultStore`.
CODE_VERSION = 1

#: Cell kinds understood by :mod:`repro.runner.execute`.
CELL_KINDS = ("trace", "opportunity", "multicore", "table1")

#: Named base configurations a cell can request.
CONFIG_NAMES = ("default", "timing")


@dataclass(frozen=True)
class Cell:
    """One independent, cacheable unit of an experiment sweep.

    ``kind`` selects the executor:

    ``trace``
        Trace-driven prefetcher run (:func:`repro.sim.engine.simulate_trace`)
        with the standard warm-up protocol.  Uses ``workload``,
        ``prefetcher``, ``degree`` (``None`` → the sweep's default).
    ``opportunity``
        Sequitur opportunity of the baseline miss stream
        (degree-independent — shared by fig11 and fig13).
    ``multicore``
        Quad-core cycle-accounting run
        (:func:`repro.sim.multicore.simulate_multicore`); ``prefetcher``
        may be ``"baseline"``.
    ``table1``
        Static rendering of the evaluated system parameters.

    ``config_name`` picks the base :class:`SystemConfig` (``"default"``
    = Table I, ``"timing"`` = the scaled-LLC cycle-model config) and
    ``overrides`` is a sorted tuple of ``(field, value)`` pairs applied
    on top via :meth:`SystemConfig.scaled`.  ``params`` carries
    kind-specific extras (hashed, forwarded to the prefetcher factory).
    """

    kind: str
    workload: str = ""
    prefetcher: str = ""
    degree: int | None = None
    config_name: str = "default"
    overrides: tuple[tuple[str, Any], ...] = ()
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in CELL_KINDS:
            raise RunnerError(
                f"unknown cell kind {self.kind!r}; known: {', '.join(CELL_KINDS)}")
        if self.config_name not in CONFIG_NAMES:
            raise RunnerError(
                f"unknown config name {self.config_name!r}; "
                f"known: {', '.join(CONFIG_NAMES)}")

    @property
    def label(self) -> str:
        """Short human-readable identity for manifests and logs."""
        parts = [self.kind]
        if self.workload:
            parts.append(self.workload)
        if self.prefetcher:
            parts.append(self.prefetcher)
        if self.degree is not None:
            parts.append(f"d{self.degree}")
        return ":".join(parts)


def cell_config(cell: Cell) -> SystemConfig:
    """Resolve the cell's :class:`SystemConfig` (base + overrides)."""
    base = SystemConfig() if cell.config_name == "default" else timing_config()
    overrides = dict(cell.overrides)
    return base.scaled(**overrides) if overrides else base


def _canonical(value: Any) -> Any:
    """Make a value canonically JSON-serialisable (tuples → lists)."""
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise RunnerError(f"value {value!r} cannot enter a cell cache key")


def cell_key(cell: Cell, options: "ExperimentOptionsLike") -> str:
    """Stable content hash identifying the cell's result.

    ``options`` is anything with ``n_accesses``, ``warmup_frac``,
    ``seed``, and ``degree`` attributes (duck-typed to avoid importing
    the experiments layer).
    """
    degree = cell.degree
    if degree is None and cell.kind == "trace":
        degree = options.degree
    material = {
        "v": CODE_VERSION,
        "cell": {
            "kind": cell.kind,
            "workload": cell.workload,
            "prefetcher": cell.prefetcher,
            "degree": degree,
            "overrides": _canonical(sorted(cell.overrides)),
            "params": _canonical(sorted(cell.params)),
        },
        "config": _canonical(dataclasses.asdict(cell_config(cell))),
    }
    if cell.kind != "table1":  # static cells depend on config alone
        material["options"] = {
            "n_accesses": options.n_accesses,
            "warmup_frac": options.warmup_frac,
            "seed": options.seed,
        }
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def l1_filter_key(workload: str, options: "ExperimentOptionsLike",
                  config: SystemConfig,
                  window: tuple[int, int] | None = None) -> str:
    """Stable content hash identifying one L1 filter artifact.

    The filter (:mod:`repro.sim.fastpath`) is the prefetcher-independent
    L1-D miss stream of one generated trace, so its identity is exactly
    what identifies the trace — ``(workload, n_accesses, seed)``, since
    generation is deterministic in those three — plus the L1-D geometry
    it was filtered through and the optional ``window`` bounds when the
    filter covers a trace slice (the opportunity cells' measured
    window).  Deliberately **not** keyed on trace content: computing the
    key without the trace is what lets a warm store skip generation
    entirely.

    Both :data:`CODE_VERSION` and the fastpath's own
    :data:`~repro.sim.fastpath.FASTPATH_VERSION` salt the key, so either
    kind of semantic change invalidates stored filters.
    """
    from ..sim.fastpath import FASTPATH_VERSION

    material = {
        "v": CODE_VERSION,
        "fastpath_v": FASTPATH_VERSION,
        "artifact": "l1_filter",
        "workload": workload,
        "n_accesses": options.n_accesses,
        "seed": options.seed,
        "window": list(window) if window is not None else None,
        "l1d": _canonical(dataclasses.asdict(config.l1d)),
    }
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ExperimentOptionsLike:  # pragma: no cover - typing aid only
    """Structural stand-in for ExperimentOptions (avoids a layering cycle)."""

    n_accesses: int
    warmup_frac: float
    seed: int
    degree: int
