"""Content-addressed on-disk artifact store for cell results.

Layout (under ``.domino-cache/`` by default, overridable via the
``DOMINO_CACHE_DIR`` environment variable or an explicit root)::

    .domino-cache/
      v1/                      # schema version directory
        ab/                    # first two hex digits of the key
          ab3f...e0.json       # one artifact per cell

Every artifact is a small JSON document ``{"schema", "code_version",
"key", "payload"}``.  Writes are atomic — the document is written to a
unique temporary file in the destination directory and ``os.replace``d
into place — so a crashed or concurrent writer can never leave a
half-written artifact behind a valid name.  Reads are defensive: any
unreadable, unparsable, or mismatched artifact is treated as a cache
*miss* (and deleted) rather than an error, because the cache must never
be able to break an experiment that could run without it.

The store intentionally reuses plain JSON rather than pickle: artifacts
survive interpreter upgrades, are greppable, and cannot execute code on
load.  Larger binary artifacts (traces) keep using the ``.npz`` path in
:mod:`repro.sim.trace`.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path

from .cells import CODE_VERSION

#: On-disk schema version; bump when the artifact document shape changes.
SCHEMA_VERSION = 1

#: Default cache root (relative to the working directory).
DEFAULT_ROOT = ".domino-cache"

_ENV_ROOT = "DOMINO_CACHE_DIR"


@dataclass(frozen=True)
class StoreStats:
    """Aggregate numbers for ``domino-repro cache stats``."""

    root: str
    n_entries: int
    total_bytes: int

    def render(self) -> str:
        mib = self.total_bytes / (1024 * 1024)
        return (f"cache {self.root}: {self.n_entries} artifacts, "
                f"{mib:.2f} MiB (schema v{SCHEMA_VERSION}, "
                f"code v{CODE_VERSION})")


class ResultStore:
    """Atomic-write JSON artifact store addressed by cell key."""

    def __init__(self, root: str | Path | None = None) -> None:
        base = Path(root or os.environ.get(_ENV_ROOT) or DEFAULT_ROOT)
        self.base = base
        self.root = base / f"v{SCHEMA_VERSION}"

    # -- addressing -----------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _artifacts(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    # -- read / write ---------------------------------------------------
    def get(self, key: str) -> dict | None:
        """Payload for ``key``, or ``None`` on any kind of miss.

        Corrupted artifacts (truncated writes from a killed process,
        stale schema, key mismatch from a renamed file) are deleted and
        reported as misses so the cell simply re-executes.
        """
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as fh:
                document = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._discard(path)
            return None
        if (not isinstance(document, dict)
                or document.get("schema") != SCHEMA_VERSION
                or document.get("code_version") != CODE_VERSION
                or document.get("key") != key
                or not isinstance(document.get("payload"), dict)):
            self._discard(path)
            return None
        return document["payload"]

    def put(self, key: str, payload: dict) -> None:
        """Atomically persist ``payload`` under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {"schema": SCHEMA_VERSION, "code_version": CODE_VERSION,
                    "key": key, "payload": payload}
        tmp = path.parent / f".{key}.{os.getpid()}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(document, fh, separators=(",", ":"))
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # json.dump failed mid-way
                tmp.unlink(missing_ok=True)

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink(missing_ok=True)
        except OSError:
            pass

    # -- maintenance ----------------------------------------------------
    def stats(self) -> StoreStats:
        artifacts = self._artifacts()
        return StoreStats(root=str(self.base), n_entries=len(artifacts),
                          total_bytes=sum(p.stat().st_size for p in artifacts))

    def clear(self) -> int:
        """Remove every artifact (all schema versions). Returns count."""
        removed = len(self._artifacts())
        if self.base.is_dir():
            shutil.rmtree(self.base, ignore_errors=True)
        return removed

    def gc(self, keep: int) -> int:
        """Drop the oldest artifacts beyond ``keep`` entries (by mtime).

        Also removes any artifact directories from older schema
        versions, which the current code can no longer read.
        """
        removed = 0
        if self.base.is_dir():
            for child in self.base.iterdir():
                if child.is_dir() and child != self.root:
                    removed += sum(1 for _ in child.glob("*/*.json"))
                    shutil.rmtree(child, ignore_errors=True)
        artifacts = self._artifacts()
        if keep >= 0 and len(artifacts) > keep:
            by_age = sorted(artifacts, key=lambda p: p.stat().st_mtime)
            for path in by_age[:len(artifacts) - keep]:
                self._discard(path)
                removed += 1
        return removed
