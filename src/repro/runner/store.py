"""Content-addressed on-disk artifact store for cell results.

Layout (under ``.domino-cache/`` by default, overridable via the
``DOMINO_CACHE_DIR`` environment variable or an explicit root)::

    .domino-cache/
      v1/                      # schema version directory
        ab/                    # first two hex digits of the key
          ab3f...e0.json       # one artifact per cell
      quarantine/              # corrupt artifacts, moved aside for autopsy
      runs/                    # checkpoint journals (repro.runner.checkpoint)
      .lock                    # advisory lock for clear/gc maintenance

Every artifact is a small JSON document ``{"schema", "code_version",
"key", "payload"}``.  Writes are durable and atomic — the document is
written to a unique temporary file in the destination directory,
flushed and ``fsync``'d, then ``os.replace``d into place — so a crashed
or concurrent writer can never leave a half-written artifact behind a
valid name, and a completed ``put`` survives power loss (which is what
lets the checkpoint journal treat a journaled key as durably done).

Bulk numeric payloads (today: ``l1_filter`` arrays) ride in a **binary
sidecar** — a ``<key>.bin`` file in the same shard directory holding
raw ``.npy`` bytes that readers open with ``np.load(mmap_mode="r")``
for zero-copy sharing through the page cache.  The JSON envelope stays
the source of truth: it records the sidecar under ``payload_path``
(file name only; resolved on ``get`` and attached into the payload as
an absolute ``sidecar_path``).  Sidecars get the same fsync +
atomic-rename treatment and are written *before* the envelope, so the
only crash artifact possible is an orphan sidecar with no envelope —
harmless, and swept by ``gc``/``clear``.  Quarantine moves envelope
and sidecar together so the evidence stays paired.

Reads are defensive: any unreadable, unparsable, or mismatched artifact
is treated as a cache *miss* and **quarantined** — moved to
``quarantine/`` and logged through ``repro.obs`` — rather than raised
or silently deleted, because the cache must never break an experiment
that could run without it, and the corrupt bytes are evidence worth
keeping.

Destructive maintenance (``clear``/``gc``) takes an advisory lockfile
so two runs sharing one cache cannot interleave an artifact sweep with
each other's writes.  Plain ``get``/``put`` stay lock-free: they are
already safe under concurrency thanks to atomic replace.

The store intentionally reuses plain JSON rather than pickle: artifacts
survive interpreter upgrades, are greppable, and cannot execute code on
load.  Larger binary artifacts (traces) keep using the ``.npz`` path in
:mod:`repro.sim.trace`.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from .. import obs
from ..obs import names as obs_names
from ..errors import RunnerError
from .cells import CODE_VERSION

#: On-disk schema version; bump when the artifact document shape changes.
SCHEMA_VERSION = 1

#: Default cache root (relative to the working directory).
DEFAULT_ROOT = ".domino-cache"

#: Where corrupt artifacts are moved (under the store base).
QUARANTINE_DIR = "quarantine"

_ENV_ROOT = "DOMINO_CACHE_DIR"

#: Seconds a maintenance lock acquire waits before giving up; the env
#: variable lets shared-cache CI shards wait out each other's sweeps
#: without threading a flag through every call site.
_ENV_LOCK_TIMEOUT = "DOMINO_STORE_LOCK_TIMEOUT"
DEFAULT_LOCK_TIMEOUT_S = 10.0

#: Store telemetry scope (off until obs.configure()).
_OBS = obs.scope("runner.store")


def default_lock_timeout_s() -> float:
    """Lock-acquire budget: ``DOMINO_STORE_LOCK_TIMEOUT`` or 10s."""
    raw = os.environ.get(_ENV_LOCK_TIMEOUT)
    if raw is None or not raw.strip():
        return DEFAULT_LOCK_TIMEOUT_S
    try:
        timeout_s = float(raw)
    except ValueError:
        raise RunnerError(
            f"{_ENV_LOCK_TIMEOUT}={raw!r} is not a number") from None
    if timeout_s < 0:
        raise RunnerError(f"{_ENV_LOCK_TIMEOUT} must be >= 0")
    return timeout_s


@dataclass(frozen=True)
class StoreStats:
    """Aggregate numbers for ``domino-repro cache stats``."""

    root: str
    n_entries: int
    total_bytes: int
    n_quarantined: int = 0

    def render(self) -> str:
        mib = self.total_bytes / (1024 * 1024)
        text = (f"cache {self.root}: {self.n_entries} artifacts, "
                f"{mib:.2f} MiB (schema v{SCHEMA_VERSION}, "
                f"code v{CODE_VERSION})")
        if self.n_quarantined:
            text += f", {self.n_quarantined} quarantined"
        return text


class StoreLock:
    """Advisory lockfile serialising destructive cache maintenance.

    ``O_CREAT | O_EXCL`` gives atomic acquisition on every platform the
    repo targets.  The file records the holder's pid; a lock whose
    holder is dead, or older than ``stale_s`` seconds, is broken —
    a crashed ``cache clear`` must not wedge every future run.
    """

    def __init__(self, base: str | Path, timeout_s: float | None = None,
                 stale_s: float = 600.0) -> None:
        self.path = Path(base) / ".lock"
        self.timeout_s = (default_lock_timeout_s() if timeout_s is None
                          else timeout_s)
        self.stale_s = stale_s
        self._held = False

    def acquire(self) -> "StoreLock":
        deadline = time.monotonic() + self.timeout_s
        self.path.parent.mkdir(parents=True, exist_ok=True)
        waited = False
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if not waited:
                    waited = True
                    _OBS.counter(obs_names.MET_LOCK_WAITS).inc()
                if self._break_if_stale():
                    continue
                if time.monotonic() >= deadline:
                    raise RunnerError(
                        f"cache lock {self.path} is held by another process "
                        f"(waited {self.timeout_s:g}s); is a concurrent "
                        "clear/gc running?") from None
                time.sleep(0.05)
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                # Advisory lockfile only: the pid is a debugging hint, not
                # durable state, and stale detection tolerates a torn write.
                fh.write(str(os.getpid()))  # repro: noqa[IO001]
            self._held = True
            return self

    def _break_if_stale(self) -> bool:
        """Remove the lockfile if its holder is provably gone."""
        try:
            pid = int(self.path.read_text(encoding="utf-8") or "0")
            age = time.time() - self.path.stat().st_mtime
        except (OSError, ValueError):
            return False  # racing holder mid-write (or already released)
        stale = age > self.stale_s
        if pid > 0 and not stale:
            try:
                os.kill(pid, 0)
                return False  # holder is alive
            except ProcessLookupError:
                stale = True
            except PermissionError:
                return False  # alive, owned by someone else
        if not stale:
            return False
        _OBS.warning(obs_names.EVT_LOCK_BROKEN, path=str(self.path), holder_pid=pid)
        _OBS.counter(obs_names.MET_LOCK_BREAKS).inc()
        try:
            self.path.unlink(missing_ok=True)
        except OSError:
            return False
        return True

    def release(self) -> None:
        if self._held:
            self._held = False
            with contextlib.suppress(OSError):
                self.path.unlink(missing_ok=True)

    def __enter__(self) -> "StoreLock":
        return self.acquire() if not self._held else self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class ResultStore:
    """Atomic-write JSON artifact store addressed by cell key."""

    def __init__(self, root: str | Path | None = None) -> None:
        base = Path(root or os.environ.get(_ENV_ROOT) or DEFAULT_ROOT)
        self.base = base
        self.root = base / f"v{SCHEMA_VERSION}"
        self.quarantine_dir = base / QUARANTINE_DIR

    # -- addressing -----------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def sidecar_path_for(self, key: str) -> Path:
        """Where ``key``'s binary sidecar lives (next to the envelope)."""
        return self.root / key[:2] / f"{key}.bin"

    def _artifacts(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def _sidecars(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.bin"))

    def _quarantined(self) -> list[Path]:
        if not self.quarantine_dir.is_dir():
            return []
        return sorted(p for p in self.quarantine_dir.iterdir() if p.is_file())

    def lock(self, timeout_s: float | None = None) -> StoreLock:
        """The store's maintenance lock (see :class:`StoreLock`)."""
        return StoreLock(self.base, timeout_s=timeout_s)

    # -- read / write ---------------------------------------------------
    def get(self, key: str, kind: str = "cell") -> dict[str, Any] | None:
        """Payload for ``key``, or ``None`` on any kind of miss.

        Corrupted artifacts (truncated writes from a killed process,
        stale schema, key mismatch from a renamed file) are quarantined
        and reported as misses so the cell simply re-executes.

        ``kind`` distinguishes artifact families sharing the store —
        ``"cell"`` results and ``"l1_filter"`` intermediates today.  A
        document whose recorded kind differs from the requested one is
        quarantined like any other mismatch; artifacts written before
        kinds existed read back as ``"cell"``.
        """
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as fh:
                document = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._quarantine(path, reason=f"{type(exc).__name__}: {exc}")
            return None
        if (not isinstance(document, dict)
                or document.get("schema") != SCHEMA_VERSION
                or document.get("code_version") != CODE_VERSION
                or document.get("key") != key
                or document.get("kind", "cell") != kind
                or not isinstance(document.get("payload"), dict)):
            self._quarantine(path, reason="schema/key/kind mismatch")
            return None
        payload: dict[str, Any] = document["payload"]
        payload_path = document.get("payload_path")
        if payload_path is not None:
            # The envelope names its sidecar by file name only; resolve
            # it relative to the shard so a relocated cache still works.
            if (not isinstance(payload_path, str) or "/" in payload_path
                    or os.sep in payload_path):
                self._quarantine(path, reason="malformed payload_path")
                return None
            sidecar = path.parent / payload_path
            if not sidecar.is_file():
                self._quarantine(path, reason="missing payload sidecar")
                return None
            payload["sidecar_path"] = str(sidecar)
        return payload

    def put(self, key: str, payload: dict[str, Any], kind: str = "cell",
            sidecar: bytes | None = None) -> None:
        """Durably and atomically persist ``payload`` under ``key``.

        When ``sidecar`` bytes are given they are written first (own
        fsync + atomic rename) and the envelope records them under
        ``payload_path`` — so a valid envelope always implies a fully
        written sidecar.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {"schema": SCHEMA_VERSION, "code_version": CODE_VERSION,
                    "key": key, "kind": kind, "payload": payload}
        if sidecar is not None:
            side = self.sidecar_path_for(key)
            stmp = side.parent / f".{key}.{os.getpid()}.bin.tmp"
            try:
                with open(stmp, "wb") as bfh:
                    bfh.write(sidecar)
                    bfh.flush()
                    os.fsync(bfh.fileno())
                os.replace(stmp, side)
            finally:
                if stmp.exists():
                    stmp.unlink(missing_ok=True)
            document["payload_path"] = side.name
        tmp = path.parent / f".{key}.{os.getpid()}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(document, fh, separators=(",", ":"))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # json.dump failed mid-way
                tmp.unlink(missing_ok=True)

    def quarantine_key(self, key: str, reason: str = "") -> bool:
        """Quarantine whatever the store holds for ``key``.

        The public entry point for callers that discover an artifact is
        bad *after* ``get`` handed it over (e.g. a filter payload whose
        decode fails).  Moves the envelope and its sidecar together.
        Returns whether anything existed to move.
        """
        path = self.path_for(key)
        if path.exists():
            self._quarantine(path, reason=reason)
            return True
        sidecar = self.sidecar_path_for(key)
        if sidecar.exists():
            self._quarantine(sidecar, reason=reason)
            return True
        return False

    def _quarantine(self, path: Path, reason: str = "") -> Path | None:
        """Move a corrupt artifact aside (graceful degradation).

        An envelope's sidecar travels with it — a quarantined filter
        without its bytes (or orphaned bytes behind a fresh rebuild)
        would be useless as evidence and confusing on disk.  Falls back
        to deletion when the move itself fails — a corrupt artifact
        must never be able to block a run twice.
        """
        moved = self._move_aside(path)
        if path.suffix == ".json":
            sidecar = path.with_suffix(".bin")
            if sidecar.exists():
                self._move_aside(sidecar)
        if moved is None:
            return None
        _OBS.warning(obs_names.EVT_ARTIFACT_QUARANTINED, path=str(path),
                     to=str(moved), reason=reason)
        return moved

    def _move_aside(self, path: Path) -> Path | None:
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            target = self.quarantine_dir / path.name
            if target.exists():
                target = self.quarantine_dir / f"{path.name}.{os.getpid()}"
            os.replace(path, target)
        except OSError:
            self._discard(path)
            return None
        return target

    @staticmethod
    def _discard(path: Path) -> None:
        with contextlib.suppress(OSError):
            path.unlink(missing_ok=True)

    # -- maintenance ----------------------------------------------------
    def stats(self) -> StoreStats:
        artifacts = self._artifacts()
        payload_bytes = sum(p.stat().st_size
                            for p in artifacts + self._sidecars())
        return StoreStats(root=str(self.base), n_entries=len(artifacts),
                          total_bytes=payload_bytes,
                          n_quarantined=len(self._quarantined()))

    def clear(self, lock_timeout_s: float | None = None) -> int:
        """Remove every artifact (all schema versions) and the
        quarantine, keeping checkpoint journals. Returns count."""
        with self.lock(timeout_s=lock_timeout_s):
            removed = len(self._artifacts())
            if self.base.is_dir():
                for child in self.base.iterdir():
                    if child.is_dir() and (child.name.startswith("v")
                                           or child == self.quarantine_dir):
                        shutil.rmtree(child, ignore_errors=True)
        return removed

    def gc(self, keep: int, lock_timeout_s: float | None = None) -> int:
        """Drop the oldest artifacts beyond ``keep`` entries (by mtime).

        Also removes any artifact directories from older schema
        versions, which the current code can no longer read.
        """
        with self.lock(timeout_s=lock_timeout_s):
            removed = 0
            if self.base.is_dir():
                for child in self.base.iterdir():
                    if (child.is_dir() and child != self.root
                            and child.name.startswith("v")):
                        removed += sum(1 for _ in child.glob("*/*.json"))
                        shutil.rmtree(child, ignore_errors=True)
            stamped = []
            for path in self._artifacts():
                try:
                    stamped.append((path.stat().st_mtime, path))
                except OSError:
                    continue
            if keep >= 0 and len(stamped) > keep:
                stamped.sort()
                for mtime, path in stamped[:len(stamped) - keep]:
                    # put() is lock-free, so re-check against the
                    # snapshot: an artifact refreshed since we ranked
                    # it is no longer the oldest — keep it.
                    try:
                        if path.stat().st_mtime != mtime:
                            continue
                    except OSError:
                        continue
                    self._discard(path)
                    self._discard(path.with_suffix(".bin"))
                    removed += 1
            # Orphan sidecars (crash between sidecar and envelope
            # write, or an envelope gc'd by an older code version).
            # Age-gated: a fresh sidecar may belong to a put() that
            # has not written its envelope yet.
            kept = {p.with_suffix(".bin") for p in self._artifacts()}
            cutoff = time.time() - 300.0
            for sidecar in self._sidecars():
                try:
                    orphaned = (sidecar not in kept
                                and sidecar.stat().st_mtime < cutoff)
                except OSError:
                    continue
                if orphaned:
                    self._discard(sidecar)
        return removed
