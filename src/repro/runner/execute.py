"""Cell executors: compute one cell's payload from first principles.

This module is imported inside worker processes, so everything here
must be importable without side effects and all inputs/outputs must be
picklable.  Payloads are plain JSON-serialisable dicts — exactly what
the artifact store persists — so a cache hit and a fresh execution are
indistinguishable to the caller.

Each worker process keeps its own :class:`WorkloadSuite` per seed so
that consecutive cells on the same workload reuse the generated trace
(the in-process analogue of what ``ExperimentContext`` did serially).
Trace generation is deterministic in (workload, length, seed), which is
what makes parallel and serial execution bit-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from .. import obs
from ..config import SystemConfig
from ..errors import RunnerError, SimulationError
from ..obs import names as obs_names
from ..obs.trace import span
from ..prefetchers.registry import make_prefetcher
from ..sequitur.analysis import analyze_sequence
from ..sim import fastpath
from ..sim.engine import TraceSimulator, collect_miss_stream, simulate_trace
from ..sim.multicore import simulate_multicore
from ..sim.trace import MemoryTrace
from ..workloads.suite import WorkloadSuite
from .cells import Cell, cell_config, l1_filter_key
from .shm import attach_trace, trace_share_key

#: Per-process workload suites, keyed by generation seed.
_SUITES: dict[int, WorkloadSuite] = {}

#: Per-process L1 filter memo, keyed by :func:`l1_filter_key`.
_FILTERS: dict[str, fastpath.L1Filter] = {}

#: Artifact-store root the fastpath shares filters through (set per
#: work item by :func:`execute_timed`; ``None`` = in-process memo only).
_FASTPATH_ROOT: str | None = None

#: Shared-memory trace spec published by the scheduler (set per work
#: item by :func:`execute_timed`; ``None`` = regenerate from the seed).
_TRACE_SHARE: dict[str, dict[str, Any]] | None = None

#: Fastpath reuse telemetry (off until obs.configure()).
_OBS = obs.scope("runner.fastpath")


def _suite(seed: int) -> WorkloadSuite:
    if seed not in _SUITES:
        _SUITES[seed] = WorkloadSuite(seed=seed)
    return _SUITES[seed]


def set_fastpath_root(root: str | None) -> None:
    """Point the fastpath at an artifact store (or detach it)."""
    global _FASTPATH_ROOT
    _FASTPATH_ROOT = root


def set_trace_share(spec: dict[str, dict[str, Any]] | None) -> None:
    """Install (or clear) the scheduler's shared-memory trace spec."""
    global _TRACE_SHARE
    _TRACE_SHARE = spec


def _trace(workload: str, options: Any) -> MemoryTrace:
    """The workload trace for ``options``, zero-copy when shared.

    Preference order: an attached shared-memory segment published by
    the scheduler (no per-worker generation, no private pages), then
    the per-process suite memo (deterministic regeneration from the
    seed).  Both return the same values, so the share is purely an
    optimisation channel.
    """
    spec = _TRACE_SHARE
    if spec is not None:
        entry = spec.get(
            trace_share_key(workload, options.n_accesses, options.seed))
        if entry is not None:
            trace = attach_trace(entry)
            if trace is not None:
                return trace
    return _suite(options.seed).trace(workload, options.n_accesses)


def _l1_filter(workload: str, options: Any, config: SystemConfig,
               window: tuple[int, int] | None = None) -> fastpath.L1Filter:
    """The L1 filter for one ``(workload, options, l1 config[, window])``.

    Resolution order: per-process memo, then the shared artifact store
    (``kind="l1_filter"``), then a fresh build from the generated trace
    (persisted back to the store for every other cell, worker, and
    ``--resume`` of the same grid).  A store hit skips trace generation
    entirely — the key is computable without the trace.
    """
    from .store import ResultStore

    key = l1_filter_key(workload, options, config, window=window)
    filt = _FILTERS.get(key)
    if filt is not None:
        if _OBS.enabled:
            _OBS.counter(obs_names.MET_FASTPATH_MEMO_HITS).inc()
        return filt
    store = ResultStore(_FASTPATH_ROOT) if _FASTPATH_ROOT is not None else None
    if store is not None:
        payload = store.get(key, kind="l1_filter")
        if payload is not None:
            try:
                filt = fastpath.filter_from_payload(payload)
            except SimulationError as exc:
                # The envelope parsed but the payload is unusable
                # (stale codec, corrupt arrays, mismatched sidecar).
                # Quarantine it like any other bad artifact — leaving
                # it in place would re-trip every future reader and
                # hide the evidence behind the rebuild's overwrite.
                filt = None
                store.quarantine_key(key, reason=str(exc))
                _OBS.warning(obs_names.EVT_FASTPATH_FILTER_REJECTED,
                             workload=workload, key=key[:12],
                             reason=str(exc))
            if filt is not None:
                _FILTERS[key] = filt
                if _OBS.enabled:
                    _OBS.counter(obs_names.MET_FASTPATH_STORE_HITS).inc()
                    _OBS.info(obs_names.EVT_FASTPATH_FILTER_HIT, source="store",
                              workload=workload, misses=filt.n_misses)
                return filt
    trace = _trace(workload, options)
    if window is not None:
        trace = trace.slice(*window)
    filt = fastpath.build_l1_filter(trace, config)
    _FILTERS[key] = filt
    if store is not None:
        payload, sidecar = fastpath.filter_to_binary(filt)
        store.put(key, payload, kind="l1_filter", sidecar=sidecar)
    return filt


def _warmup(options: Any) -> int:
    return int(options.n_accesses * options.warmup_frac)


def _execute_trace(cell: Cell, options: Any) -> dict[str, Any]:
    config = cell_config(cell)
    degree = cell.degree if cell.degree is not None else options.degree
    prefetcher = make_prefetcher(cell.prefetcher, config, degree=degree,
                                 **dict(cell.params))
    if fastpath.enabled():
        filt = _l1_filter(cell.workload, options, config)
        sim = TraceSimulator(config, prefetcher)
        result = sim.run_filtered(filt, warmup=_warmup(options))
    else:
        trace = _trace(cell.workload, options)
        result = simulate_trace(trace, config, prefetcher,
                                warmup=_warmup(options))
    return {
        "coverage": result.coverage,
        "overprediction_ratio": result.overprediction_ratio,
        "accuracy": result.accuracy,
        "misses": result.metrics.misses,
        "prefetch_hits": result.metrics.prefetch_hits,
        "prefetches_issued": result.metrics.prefetches_issued,
        "accesses": result.metrics.accesses,
    }


def _execute_opportunity(cell: Cell, options: Any) -> dict[str, Any]:
    config = cell_config(cell)
    if fastpath.enabled():
        # With a NullPrefetcher the buffer never fills, so the baseline
        # miss stream over the measured window *is* the window's L1
        # filter — no engine run needed.
        bounds = (_warmup(options), options.n_accesses)
        filt = _l1_filter(cell.workload, options, config, window=bounds)
        blocks = filt.blocks.tolist()
    else:
        trace = _trace(cell.workload, options)
        window = trace.slice(_warmup(options), len(trace))
        miss_stream = collect_miss_stream(window, config)
        blocks = [block for _, block in miss_stream]
    analysis = analyze_sequence(blocks)
    return {
        "opportunity": analysis.opportunity,
        "n_misses": len(blocks),
    }


def _execute_multicore(cell: Cell, options: Any) -> dict[str, Any]:
    config = cell_config(cell)
    per_core = max(options.n_accesses // 2, 20_000)
    traces = _suite(options.seed).core_traces(cell.workload, per_core,
                                              n_cores=config.n_cores)
    result = simulate_multicore(traces, config, cell.prefetcher,
                                warmup_frac=options.warmup_frac,
                                **dict(cell.params))
    return {
        "ipc": result.ipc,
        "coverage": result.coverage,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "bandwidth_utilization": result.bandwidth_utilization,
    }


def _execute_table1(cell: Cell, options: Any) -> dict[str, Any]:
    config = cell_config(cell)
    rows = [
        ["Chip", f"{config.n_cores} cores, {config.clock_ghz:g} GHz"],
        ["Core", f"OoO, {config.issue_width}-wide, {config.rob_entries}-entry "
                 f"ROB, {config.lsq_entries}-entry LSQ"],
        ["L1-D", f"{config.l1d.size_bytes // 1024} KB, {config.l1d.ways}-way, "
                 f"{config.l1d.hit_latency}-cycle, {config.l1_mshrs} MSHRs"],
        ["LLC", f"{config.llc.size_bytes // (1024 * 1024)} MB, "
                f"{config.llc.ways}-way, {config.llc.hit_latency}-cycle, "
                f"{config.llc_mshrs} MSHRs"],
        ["Memory", f"{config.memory_latency_ns:g} ns "
                   f"({config.memory_latency_cycles} cycles), "
                   f"{config.peak_bandwidth_gbps:g} GB/s peak"],
        ["Prefetch buffer", f"{config.prefetch_buffer_blocks} blocks"],
        ["Prefetch degree", str(config.prefetch_degree)],
        ["Active streams", str(config.active_streams)],
        ["Metadata sampling", f"{config.sampling_probability:.1%}"],
        ["HT", f"{config.ht_entries} entries, {config.ht_row_entries}/row"],
        ["EIT", f"{config.eit_rows} rows x {config.eit_assoc} super-entries "
                f"x {config.eit_entries_per_super} entries"],
    ]
    return {"rows": rows}


_EXECUTORS = {
    "trace": _execute_trace,
    "opportunity": _execute_opportunity,
    "multicore": _execute_multicore,
    "table1": _execute_table1,
}


def execute_cell(cell: Cell, options: Any) -> dict[str, Any]:
    """Run one cell and return its JSON-serialisable payload."""
    try:
        executor = _EXECUTORS[cell.kind]
    except KeyError:
        raise RunnerError(f"no executor for cell kind {cell.kind!r}") from None
    return executor(cell, options)


@dataclass
class CellTelemetry:
    """What one cell execution cost and what it observed.

    Picklable side channel next to the payload: the payload stays
    byte-identical with telemetry on or off (it is what gets cached),
    while this rides back to the scheduler for manifests and traces.
    """

    wall_s: float = 0.0
    cpu_s: float = 0.0
    #: Structured events captured inside the (worker) process.
    events: list[dict[str, Any]] = field(default_factory=list)
    #: Registry snapshot captured inside the (worker) process.
    metrics: dict[str, Any] = field(default_factory=dict)
    #: Ring-buffer evictions during capture (0 = full-fidelity trace).
    dropped: int = 0
    #: Top cProfile rows, when per-cell profiling was requested.
    profile: list[dict[str, Any]] = field(default_factory=list)
    #: Finished span records captured inside the (worker) process; the
    #: scheduler grafts them under its own span tree on absorption.
    spans: list[dict[str, Any]] = field(default_factory=list)


def execute_timed(
    item: tuple[int, str, Cell, Any] | tuple[int, str, Cell, Any, "obs.ObsConfig | None"] | tuple[Any, ...],
) -> tuple[int, str, dict[str, Any], CellTelemetry]:
    """Pool entry point:
    ``(index, key, cell, options[, obs_config[, faults, attempt[,
    fastpath_root[, trace_share]]]])`` in,
    ``(index, key, payload, telemetry)`` out.

    When an :class:`repro.obs.ObsConfig` rides along, the cell runs
    under a fresh captured telemetry state (shielding whatever the
    worker inherited via fork) and its events/metrics/profile come back
    in the :class:`CellTelemetry`.  Without one, the only cost over the
    bare call is two clock reads.

    When a :class:`repro.faults.FaultPlan` rides along (chaos testing),
    it is applied *before* the cell computes: the injected crash, hang,
    or worker death for ``(key, attempt)`` is deterministic, so serial
    and pool execution fail — and therefore retry — identically.
    """
    index, key, cell, options = item[:4]
    obs_config = item[4] if len(item) > 4 else None
    faults = item[5] if len(item) > 5 else None
    attempt = item[6] if len(item) > 6 else 0
    set_fastpath_root(item[7] if len(item) > 7 else None)
    set_trace_share(item[8] if len(item) > 8 else None)
    if faults is not None:
        faults.apply(key, attempt)
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    with obs.capture(obs_config) as cap:
        with span(obs_names.SPAN_CELL, cell=cell.label, attempt=attempt):
            if obs_config is not None and obs_config.profile:
                payload, profile_rows = obs.profile_call(
                    execute_cell, cell, options, top=obs_config.profile_top)
            else:
                payload = execute_cell(cell, options)
                profile_rows = []
    telemetry = CellTelemetry(wall_s=time.perf_counter() - wall0,
                              cpu_s=time.process_time() - cpu0,
                              events=cap.events, metrics=cap.metrics,
                              dropped=cap.dropped, profile=profile_rows,
                              spans=cap.spans)
    return index, key, payload, telemetry
