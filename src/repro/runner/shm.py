"""Zero-copy trace handoff to pool workers via shared memory.

Without this module every pool worker regenerates each workload trace
from its seed on first use (the generated arrays cannot ride the
work-item pickle without copying megabytes per cell).  With it, the
scheduler generates each needed trace **once**, copies its four column
arrays into one ``multiprocessing.shared_memory`` segment, and passes
workers a tiny picklable *spec* (segment name + length per trace).
Workers attach the segment and wrap the mapped pages in read-only numpy
views — a :class:`~repro.sim.trace.MemoryTrace` whose storage is the
parent's pages, shared by every worker at zero marginal cost.

Segment layout (no header; the spec carries the length ``n``)::

    [0,      8n)   pcs     int64
    [8n,    16n)   blocks  int64
    [16n,   20n)   works   int32
    [20n,   21n)   deps    int8

Lifetime is owned by the scheduler: segments are created before the
pool spins up and unlinked in a ``finally`` when the run ends, so they
survive mid-run pool rebuilds (timeout watchdog) but never a completed
or crashed *parent*.  Two guards keep /dev/shm clean anyway:

* segment names embed the creating pid (``dmtr<pid>x<seq>``), and
  :func:`reap_stale_segments` — called before each publish — unlinks
  segments whose creator is provably dead (a SIGKILLed parent);
* workers attach **untracked** where the stdlib allows it
  (``track=False``, Python 3.13+).  Before 3.13 the attach-side
  ``resource_tracker.register`` is left alone on purpose: fork-family
  workers share the parent's tracker, so their register is an
  idempotent no-op and the owner's ``unlink`` unregisters exactly once
  (an explicit unregister here would poison the shared cache — the
  bpo-38119 family of problems).  On spawn platforms an exiting
  worker's tracker may unlink a live segment early; attaches then fail
  and callers regenerate, degrading throughput, never correctness.

``DOMINO_TRACE_SHM=0`` disables the whole mechanism; workers then fall
back to per-process regeneration, which stays bit-identical (the spec
is an optimisation channel, never a correctness dependency).
"""

from __future__ import annotations

import atexit
import contextlib
import itertools
import os
from multiprocessing import shared_memory
from pathlib import Path
from typing import Any

import numpy as np

from .. import obs
from ..obs import names as obs_names
from ..sim.trace import MemoryTrace

#: Prefix of every segment this module creates (pid + sequence follow).
SEGMENT_PREFIX = "dmtr"

#: Environment toggle: ``0``/``false``/``off``/``no`` disables shm
#: handoff (workers regenerate traces; results are unchanged).
ENV_TOGGLE = "DOMINO_TRACE_SHM"

_OFF_VALUES = ("0", "false", "off", "no")

#: Shared-memory telemetry scope (off until obs.configure()).
_OBS = obs.scope("runner.shm")

_COUNTER = itertools.count()

#: Worker-side attach caches: one mapping per process, keyed by segment
#: name.  Holding the SharedMemory objects keeps the mappings alive for
#: the whole worker lifetime (the parent owns unlinking).
_ATTACHED_TRACES: dict[str, MemoryTrace] = {}
_ATTACHED_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}


def share_enabled() -> bool:
    """Whether trace handoff through shared memory is active."""
    raw = os.environ.get(ENV_TOGGLE, "1").strip().lower()
    return raw not in _OFF_VALUES


def trace_share_key(workload: str, n_accesses: int, seed: int) -> str:
    """Spec key identifying one generated trace (mirrors the suite memo)."""
    return f"{workload}|{n_accesses}|{seed}"


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment, untracked where supported."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter (see module doc)
        return shared_memory.SharedMemory(name=name)


def _release_attachments() -> None:
    """Drop cached traces, then close their segments (atexit).

    Order matters: the numpy views must die before ``close()`` or the
    exported memoryview makes it raise ``BufferError``.  Anything still
    referencing a shared trace keeps its pages mapped regardless — the
    suppress below only quiets the bookkeeping, never unmaps live data.
    """
    _ATTACHED_TRACES.clear()
    for seg in _ATTACHED_SEGMENTS.values():
        with contextlib.suppress(BufferError, OSError):
            seg.close()
    _ATTACHED_SEGMENTS.clear()


atexit.register(_release_attachments)


class TraceShare:
    """A set of published trace segments plus their picklable spec.

    Create with :func:`publish_traces`; the owner must call
    :meth:`close` (idempotent) when the consumers are gone.
    """

    def __init__(self) -> None:
        self.spec: dict[str, dict[str, Any]] = {}
        self._segments: list[shared_memory.SharedMemory] = []

    def __len__(self) -> int:
        return len(self._segments)

    def add(self, key: str, trace: MemoryTrace) -> None:
        n = len(trace)
        name = f"{SEGMENT_PREFIX}{os.getpid()}x{next(_COUNTER)}"
        seg = shared_memory.SharedMemory(name=name, create=True,
                                         size=max(21 * n, 1))
        buf = seg.buf
        np.frombuffer(buf, np.int64, n, 0)[:] = trace.pcs
        np.frombuffer(buf, np.int64, n, 8 * n)[:] = trace.blocks
        np.frombuffer(buf, np.int32, n, 16 * n)[:] = trace.works
        np.frombuffer(buf, np.int8, n, 20 * n)[:] = trace.deps
        self._segments.append(seg)
        self.spec[key] = {"segment": name, "n": n, "trace_name": trace.name}

    def close(self) -> None:
        """Unlink every segment (the owner's end-of-run duty)."""
        for seg in self._segments:
            with contextlib.suppress(OSError):
                seg.close()
            with contextlib.suppress(OSError, FileNotFoundError):
                seg.unlink()
        self._segments = []
        self.spec = {}


def publish_traces(traces: dict[str, MemoryTrace]) -> TraceShare | None:
    """Export ``traces`` (spec key -> trace) into shared memory.

    Returns ``None`` when there is nothing to share or the platform
    refuses (no /dev/shm, permission trouble) — callers fall back to
    per-worker regeneration either way.
    """
    if not traces:
        return None
    share = TraceShare()
    try:
        for key, trace in traces.items():
            share.add(key, trace)
    except OSError:
        share.close()
        return None
    if _OBS.enabled:
        _OBS.counter(obs_names.MET_TRACE_SHM_SEGMENTS).inc(len(share))
        _OBS.info(obs_names.EVT_TRACE_SHM_PUBLISHED,
                  segments=len(share), traces=sorted(traces))
    return share


def attach_trace(entry: dict[str, Any]) -> MemoryTrace | None:
    """Materialise a worker-side trace from one spec entry.

    Returns ``None`` when the segment cannot be attached (already
    unlinked, malformed entry) so the caller regenerates instead.  The
    returned trace's arrays are read-only views of the shared pages;
    repeat calls for the same segment reuse one cached attachment.
    """
    try:
        name = str(entry["segment"])
        n = int(entry["n"])
        trace_name = str(entry["trace_name"])
    except (KeyError, TypeError, ValueError):
        return None
    cached = _ATTACHED_TRACES.get(name)
    if cached is not None:
        return cached
    try:
        seg = _attach_segment(name)
    except (OSError, ValueError):
        return None
    if seg.size < 21 * n:
        with contextlib.suppress(OSError):
            seg.close()
        return None
    buf = seg.buf
    columns = (np.frombuffer(buf, np.int64, n, 0),
               np.frombuffer(buf, np.int64, n, 8 * n),
               np.frombuffer(buf, np.int8, n, 20 * n),
               np.frombuffer(buf, np.int32, n, 16 * n))
    for col in columns:
        col.setflags(write=False)
    pcs, blocks, deps, works = columns
    trace = MemoryTrace(pcs=pcs, blocks=blocks, deps=deps, works=works,
                        name=trace_name)
    _ATTACHED_SEGMENTS[name] = seg
    _ATTACHED_TRACES[name] = trace
    if _OBS.enabled:
        _OBS.counter(obs_names.MET_TRACE_SHM_ATTACHES).inc()
    return trace


def active_segments() -> list[str]:
    """Names of this module's segments currently present in /dev/shm.

    The leak check used by benchmarks and the chaos harness: after a
    run's ``TraceShare.close()`` this must be empty.
    """
    base = Path("/dev/shm")
    if not base.is_dir():  # non-Linux: no portable way to enumerate
        return []
    try:
        return sorted(p.name for p in base.iterdir()
                      if p.name.startswith(SEGMENT_PREFIX))
    except OSError:
        return []


def _creator_pid(name: str) -> int | None:
    body = name[len(SEGMENT_PREFIX):]
    pid_text = body.split("x", 1)[0]
    try:
        return int(pid_text)
    except ValueError:
        return None


def reap_stale_segments() -> int:
    """Unlink segments whose creating process is dead.  Returns count.

    A parent killed with SIGKILL never reaches ``TraceShare.close()``;
    the pid baked into each segment name lets the next run sweep the
    orphans instead of leaking /dev/shm until reboot.
    """
    reaped = []
    for name in active_segments():
        pid = _creator_pid(name)
        if pid is None or pid == os.getpid():
            continue
        try:
            os.kill(pid, 0)
            continue                      # creator still alive
        except ProcessLookupError:
            pass                          # provably dead: reap
        except (PermissionError, OSError):
            continue                      # alive under another uid
        try:
            seg = _attach_segment(name)
            seg.close()
            seg.unlink()
            reaped.append(name)
        except (OSError, ValueError):
            continue
    if reaped:
        _OBS.warning(obs_names.EVT_TRACE_SHM_REAPED,
                     segments=len(reaped), names=reaped)
    return len(reaped)
