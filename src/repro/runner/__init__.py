"""Parallel experiment execution engine with a content-addressed cache.

An experiment sweep decomposes into independent **cells** — one
(workload, prefetcher, config) simulation each — that the scheduler
fans out across a ``multiprocessing`` worker pool and memoises in an
on-disk artifact store keyed by a stable content hash.  Repeated and
overlapping runs are incremental: a second ``domino-repro run all`` is
near-instant, and experiments that sweep the same cells (fig11/fig13
share their Sequitur-opportunity cells) pay for them once.

The engine is fault tolerant (see docs/ROBUSTNESS.md): worker crashes,
hangs, and deaths are isolated to the cell that suffered them, retried
with exponential backoff, bounded by a per-cell timeout watchdog, and —
under a degradable policy — surfaced as partial results rather than an
aborted run.  Long sweeps journal completed cells to a checkpoint so a
killed run resumes bit-identically (:mod:`repro.runner.checkpoint`),
and every failure path is exercised deterministically by the fault
injection harness in :mod:`repro.faults`.

Layering: ``runner`` sits *below* :mod:`repro.experiments` — it knows
how to execute a cell from first principles (workload suite, simulator,
registry) and never imports the experiment drivers, so drivers can
import it freely.

See ``docs/RUNNER.md`` for the cell model and cache-invalidation rules.
"""

from .cells import CODE_VERSION, Cell, cell_config, cell_key
from .checkpoint import CheckpointJournal
from .execute import CellTelemetry
from .manifest import CELL_STATUSES
from .manifest import SCHEMA_VERSION as MANIFEST_SCHEMA_VERSION
from .manifest import CellRecord, RunManifest
from .scheduler import ExecutionPolicy, get_policy, run_cells, set_policy
from .store import ResultStore, StoreLock, StoreStats

__all__ = [
    "CELL_STATUSES",
    "CODE_VERSION",
    "MANIFEST_SCHEMA_VERSION",
    "Cell",
    "CellRecord",
    "CellTelemetry",
    "CheckpointJournal",
    "ExecutionPolicy",
    "ResultStore",
    "RunManifest",
    "StoreLock",
    "StoreStats",
    "cell_config",
    "cell_key",
    "get_policy",
    "run_cells",
    "set_policy",
]
