"""Cell scheduler: cache probe, pool fan-out, ordered collection.

``run_cells`` is the single entry point.  For every cell it first
probes the artifact store; only misses are executed, either in-process
(``jobs == 1`` or pool unavailable) or across a ``multiprocessing``
pool.  Results always come back in input order regardless of worker
completion order, so experiments can zip cells to payloads positionally
and parallel output is bit-identical to serial output.

The execution policy (worker count, cache on/off, cache root) is a
process-wide setting written by the CLI before experiments run; library
callers can pass an explicit policy instead.  Policy knobs never enter
cache keys — see :mod:`repro.runner.cells`.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Sequence

from .cells import Cell, cell_key
from .execute import execute_timed
from .manifest import RunManifest
from .store import ResultStore


@dataclass(frozen=True)
class ExecutionPolicy:
    """How cells run: parallelism and caching. Never affects results.

    ``use_cache`` defaults to ``False`` so plain library calls
    (``run_experiment`` from tests or notebooks) never write to the
    working directory as a side effect; the CLI opts in explicitly
    (``domino-repro run`` caches unless ``--no-cache`` is given).
    """

    jobs: int = 1
    use_cache: bool = False
    cache_dir: str | Path | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")


_POLICY = ExecutionPolicy()


def set_policy(policy: ExecutionPolicy | None = None, **overrides: Any) -> ExecutionPolicy:
    """Install the process-wide execution policy (CLI entry point)."""
    global _POLICY
    base = policy if policy is not None else ExecutionPolicy()
    _POLICY = replace(base, **overrides) if overrides else base
    return _POLICY


def get_policy() -> ExecutionPolicy:
    return _POLICY


def _run_serial(pending: list[tuple[int, str, Cell]], options: Any,
                results: list, store: ResultStore | None,
                manifest: RunManifest) -> None:
    for index, key, cell in pending:
        _, _, payload, wall = execute_timed((index, key, cell, options))
        results[index] = payload
        if store is not None:
            store.put(key, payload)
        manifest.record_executed(key, cell.label, wall)


def _run_pool(pending: list[tuple[int, str, Cell]], options: Any,
              results: list, store: ResultStore | None,
              manifest: RunManifest, jobs: int) -> bool:
    """Fan pending cells across a worker pool. False if no pool could
    be created (caller falls back to serial execution)."""
    labels = {index: cell.label for index, key, cell in pending}
    work = [(index, key, cell, options) for index, key, cell in pending]
    try:
        pool = multiprocessing.Pool(processes=min(jobs, len(work)))
    except (OSError, ValueError, ImportError):
        return False
    try:
        for index, key, payload, wall in pool.imap(execute_timed, work):
            results[index] = payload
            if store is not None:
                store.put(key, payload)
            manifest.record_executed(key, labels[index], wall)
    finally:
        pool.close()
        pool.join()
    return True


def run_cells(cells: Sequence[Cell], options: Any,
              policy: ExecutionPolicy | None = None) -> tuple[list[dict], RunManifest]:
    """Execute ``cells`` under ``policy`` (default: the global policy).

    Returns ``(payloads, manifest)`` with payloads in input order.
    ``options`` supplies the trace-shaping parameters
    (``n_accesses``/``warmup_frac``/``seed``/``degree``); see
    :func:`repro.runner.cells.cell_key` for what enters the cache key.
    """
    policy = policy if policy is not None else _POLICY
    store = ResultStore(policy.cache_dir) if policy.use_cache else None
    manifest = RunManifest(jobs=policy.jobs, cache_enabled=policy.use_cache)
    start = time.perf_counter()

    results: list = [None] * len(cells)
    pending: list[tuple[int, str, Cell]] = []
    for index, cell in enumerate(cells):
        key = cell_key(cell, options)
        payload = store.get(key) if store is not None else None
        if payload is not None:
            results[index] = payload
            manifest.record_hit(key, cell.label)
        else:
            pending.append((index, key, cell))

    if pending:
        if policy.jobs > 1 and len(pending) > 1:
            if _run_pool(pending, options, results, store, manifest, policy.jobs):
                manifest.mode = "pool"
            else:
                _run_serial(pending, options, results, store, manifest)
                manifest.mode = "serial-fallback"
        else:
            _run_serial(pending, options, results, store, manifest)

    manifest.wall_s = time.perf_counter() - start
    return results, manifest
