"""Cell scheduler: cache probe, fault-tolerant fan-out, ordered collection.

``run_cells`` is the single entry point.  For every cell it first
probes the artifact store; only misses are executed, either in-process
(``jobs == 1`` or pool unavailable) or across a ``multiprocessing``
pool.  Results always come back in input order regardless of worker
completion order, so experiments can zip cells to payloads positionally
and parallel output is bit-identical to serial output.

Failure isolation (see docs/ROBUSTNESS.md): a worker exception, a
worker death, or a per-cell timeout marks *that cell* failed instead of
aborting the run.  Each cell gets ``policy.retries`` retries with
exponential backoff and deterministic jitter; cells that exhaust the
budget are recorded in the manifest with status ``failed`` or
``timeout`` and — under ``keep_going`` — leave a ``None`` payload so
the run still emits partial results.  The pool loop collects results
asynchronously (``apply_async`` + polling) so a hung cell can never
block the run forever: when a cell blows its wall-clock deadline the
pool is torn down with ``terminate()``, innocent in-flight cells are
resubmitted without penalty, and the hung cell is retried or failed.

Checkpoint/resume: with ``policy.run_id`` set, every durably persisted
cell key is journaled (atomic append + fsync) to
``<cache>/runs/<run-id>.ckpt``; a resumed run loads the journal and
serves those cells from the store, bit-identical.

The execution policy (worker count, cache on/off, retries, timeout,
fault plan) is a process-wide setting written by the CLI before
experiments run; library callers can pass an explicit policy instead.
Policy knobs never enter cache keys — see :mod:`repro.runner.cells`.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from collections.abc import Sequence
from typing import Any

from .. import obs
from ..backoff import backoff_delay
from ..cancel import CancelToken, cancel_scope
from ..obs import names as obs_names
from ..obs.trace import current_span, span
from ..errors import (CellFailedError, CheckpointError, JobCancelled,
                      RunnerTimeoutError)
from ..faults import FaultPlan, corrupt_artifact
from ..sim import fastpath
from ..workloads.suite import WorkloadSuite
from . import shm
from .cells import Cell, cell_config, cell_key, l1_filter_key
from .checkpoint import CheckpointJournal
from .execute import CellTelemetry, execute_timed
from .manifest import RunManifest
from .store import ResultStore

#: Scheduler telemetry scope (off until obs.configure()).
_OBS = obs.scope("runner.scheduler")

#: Grace added to pool deadlines for worker pickup latency: a task is
#: submitted only when a worker slot is free, but the worker still has
#: to unpickle it before the cell's clock really starts.
_DISPATCH_GRACE_S = 0.25

#: Pool poll interval while waiting for results (seconds).
_POLL_S = 0.01


@dataclass(frozen=True)
class ExecutionPolicy:
    """How cells run: parallelism, caching, and fault tolerance.
    Never affects results.

    ``use_cache`` defaults to ``False`` so plain library calls
    (``run_experiment`` from tests or notebooks) never write to the
    working directory as a side effect; the CLI opts in explicitly
    (``domino-repro run`` caches unless ``--no-cache`` is given).

    Fault-tolerance knobs (all default to the strict, legacy-compatible
    behaviour):

    ``retries``
        Retry budget per cell; attempt ``n`` waits
        ``backoff_s * 2**n`` (capped at ``backoff_max_s``) scaled by a
        deterministic jitter in ``[0.5, 1.5)`` before re-running.
    ``timeout_s``
        Per-cell wall-clock budget.  In pool mode a watchdog terminates
        the pool and retries the cell; in serial mode the overrun is
        detected after the fact and the result discarded, so both modes
        record the same ``timeout`` status.
    ``keep_going``
        When True, cells that exhaust retries yield ``None`` payloads
        and the run completes (graceful degradation); when False the
        first exhausted cell raises :class:`CellFailedError`.
    ``run_id`` / ``resume``
        Checkpoint journaling (requires ``use_cache``); see
        :mod:`repro.runner.checkpoint`.
    ``faults``
        Deterministic fault-injection plan (chaos testing); see
        :mod:`repro.faults`.
    """

    jobs: int = 1
    use_cache: bool = False
    cache_dir: str | Path | None = None
    retries: int = 0
    backoff_s: float = 0.05
    backoff_max_s: float = 2.0
    timeout_s: float | None = None
    keep_going: bool = False
    run_id: str | None = None
    resume: bool = False
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.resume and not self.run_id:
            raise ValueError("resume requires a run_id")


_POLICY = ExecutionPolicy()


def set_policy(policy: ExecutionPolicy | None = None, **overrides: Any) -> ExecutionPolicy:
    """Install the process-wide execution policy (CLI entry point)."""
    global _POLICY
    base = policy if policy is not None else ExecutionPolicy()
    _POLICY = replace(base, **overrides) if overrides else base
    return _POLICY


def get_policy() -> ExecutionPolicy:
    return _POLICY


# ---------------------------------------------------------------------------
# outcomes and shared attempt bookkeeping


@dataclass
class _Outcome:
    """Terminal result of one cell: a payload or an exhausted failure."""

    index: int
    key: str
    label: str
    status: str                       # ok | retried | failed | timeout
    attempts: int
    payload: dict[str, Any] | None = None
    telemetry: CellTelemetry | None = None
    error: str = ""


def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _backoff_delay(policy: ExecutionPolicy, key: str, attempt: int) -> float:
    """Exponential backoff with deterministic jitter in [0.5x, 1.5x)."""
    return backoff_delay(key, attempt, base_s=policy.backoff_s,
                         max_s=policy.backoff_max_s)


def _attempt_failed(exc: BaseException, key: str, label: str, attempt: int,
                    policy: ExecutionPolicy) -> tuple[str, float]:
    """Classify one failed attempt: ``("retry", delay)`` or a terminal
    ``("failed" | "timeout", 0.0)``.  Emits the matching trace event."""
    timed_out = isinstance(exc, RunnerTimeoutError)
    if timed_out:
        _OBS.warning(obs_names.EVT_CELL_TIMEOUT, cell=label, attempt=attempt + 1,
                     timeout_s=policy.timeout_s)
    if attempt < policy.retries:
        delay = _backoff_delay(policy, key, attempt)
        _OBS.warning(obs_names.EVT_CELL_RETRY, cell=label, attempt=attempt + 1,
                     delay_s=round(delay, 4), error=_describe(exc))
        return "retry", delay
    status = "timeout" if timed_out else "failed"
    _OBS.error(obs_names.EVT_CELL_FAILED, cell=label, status=status,
               attempts=attempt + 1, error=_describe(exc))
    return status, 0.0


def _exhausted(outcome: _Outcome, policy: ExecutionPolicy,
               cause: BaseException) -> _Outcome:
    """Final failure: raise under strict policy, else degrade."""
    if not policy.keep_going:
        raise CellFailedError(
            f"cell {outcome.label} {outcome.status} after "
            f"{outcome.attempts} attempt(s): {outcome.error}") from cause
    return outcome


def _finish(outcome: _Outcome, results: list[dict[str, Any] | None],
            manifest: RunManifest) -> None:
    """Fold one terminal cell outcome into the run, in input order.

    Successful payloads are persisted and journaled immediately by the
    caller (crash safety); this function owns the deterministic, input-
    ordered accounting: manifest rows, absorbed worker telemetry, and
    trace events — identical for serial and pool execution.
    """
    if outcome.payload is None:
        manifest.record_failed(outcome.key, outcome.label,
                               status=outcome.status,
                               attempts=outcome.attempts,
                               error=outcome.error)
        return
    results[outcome.index] = outcome.payload
    telemetry = outcome.telemetry or CellTelemetry()
    manifest.record_executed(outcome.key, outcome.label,
                             telemetry.wall_s, telemetry.cpu_s,
                             status=outcome.status,
                             attempts=outcome.attempts)
    if _OBS.enabled:
        # Worker spans graft under this context's open span (the
        # runner.run span), joining its trace id.
        obs.absorb(telemetry.events, telemetry.metrics,
                   tag={"cell": outcome.label},
                   spans=telemetry.spans, parent=current_span())
        _OBS.info(obs_names.EVT_CELL_EXECUTED, cell=outcome.label, key=outcome.key[:12],
                  status=outcome.status, attempts=outcome.attempts,
                  wall_s=round(telemetry.wall_s, 6),
                  cpu_s=round(telemetry.cpu_s, 6),
                  events=len(telemetry.events), dropped=telemetry.dropped)
        if telemetry.profile:
            _OBS.info(obs_names.EVT_CELL_PROFILE, cell=outcome.label,
                      rows=telemetry.profile)


def _persist(key: str, payload: dict[str, Any], status: str,
             store: ResultStore | None, policy: ExecutionPolicy,
             journal: CheckpointJournal | None) -> None:
    """Durably store a completed payload and journal its key.

    Runs at completion time (not collection time) so a kill between two
    cells loses at most the in-flight work.  The ``corrupt`` fault mode
    clobbers the artifact *after* the put, modelling on-disk rot that
    the next run's quarantine path must absorb.
    """
    if store is None:
        return
    store.put(key, payload)
    if policy.faults is not None and policy.faults.should_corrupt(key):
        if corrupt_artifact(store.path_for(key)):
            _OBS.warning(obs_names.EVT_FAULT_CORRUPT_ARTIFACT, key=key[:12])
    if journal is not None:
        journal.record(key, status)


# ---------------------------------------------------------------------------
# serial execution


def _run_serial(pending: list[tuple[int, str, Cell]], options: Any,
                results: list[dict[str, Any] | None], store: ResultStore | None,
                manifest: RunManifest, policy: ExecutionPolicy,
                journal: CheckpointJournal | None,
                cancel: CancelToken | None = None) -> None:
    obs_config = obs.current_config()
    fastpath_root = str(store.base) if store is not None else None
    for index, key, cell in pending:
        attempt = 0
        while True:
            if cancel is not None:
                cancel.raise_if_cancelled()
            started = time.monotonic()
            try:
                # The scope makes the token visible to the engine's
                # checkpoint inside this thread's call stack.
                with cancel_scope(cancel):
                    _, _, payload, telemetry = execute_timed(
                        (index, key, cell, options, obs_config,
                         policy.faults, attempt, fastpath_root))
                elapsed = time.monotonic() - started
                if (policy.timeout_s is not None
                        and elapsed > policy.timeout_s):
                    raise RunnerTimeoutError(
                        f"cell {cell.label} took {elapsed:.3f}s "
                        f"(budget {policy.timeout_s:g}s)")
            except JobCancelled:
                # Cancellation is a run-level verdict, not a cell
                # failure: never retried, never degraded by keep_going.
                raise
            except Exception as exc:
                action, delay = _attempt_failed(exc, key, cell.label,
                                                attempt, policy)
                if action == "retry":
                    if cancel is None:
                        time.sleep(delay)
                    elif cancel.wait(delay):
                        cancel.raise_if_cancelled()
                    attempt += 1
                    continue
                outcome = _Outcome(index=index, key=key, label=cell.label,
                                   status=action, attempts=attempt + 1,
                                   error=_describe(exc))
                _finish(_exhausted(outcome, policy, exc), results, manifest)
                break
            status = "retried" if attempt else "ok"
            _persist(key, payload, status, store, policy, journal)
            _finish(_Outcome(index=index, key=key, label=cell.label,
                             status=status, attempts=attempt + 1,
                             payload=payload, telemetry=telemetry),
                    results, manifest)
            break


# ---------------------------------------------------------------------------
# pool execution


@dataclass
class _InFlight:
    """One dispatched cell attempt awaiting its AsyncResult."""

    handle: Any
    key: str
    cell: Cell
    attempt: int
    deadline: float | None


@dataclass
class _Queued:
    """One cell attempt waiting for a worker slot (or its backoff)."""

    index: int
    key: str
    cell: Cell
    attempt: int = 0
    eligible_at: float = 0.0
    #: Preserves original submission order among equally eligible items.
    rank: int = field(default=0)


def _make_pool(processes: int) -> multiprocessing.pool.Pool | None:
    try:
        return multiprocessing.Pool(processes=processes)
    except (OSError, ValueError, ImportError):
        return None


def _trace_share_plan(pending: list[tuple[int, str, Cell]], options: Any,
                      store: ResultStore | None) -> dict[str, str]:
    """Spec key -> workload for traces some pool worker will generate.

    A trace is needed unless the fastpath will serve the cell from an
    already-stored filter — probed via :func:`l1_filter_key`, which is
    computable without the trace bytes.  A filter that is *not* stored
    yet means the first worker to claim the cell builds it from the
    trace (and concurrent workers on sibling cells race to do the
    same), so the trace still has to travel.
    """
    needed: dict[str, str] = {}
    fastpath_on = fastpath.enabled()
    for _, _, cell in pending:
        if cell.kind not in ("trace", "opportunity"):
            continue
        if fastpath_on and store is not None:
            if cell.kind == "trace":
                window = None
            else:
                window = (int(options.n_accesses * options.warmup_frac),
                          options.n_accesses)
            fkey = l1_filter_key(cell.workload, options, cell_config(cell),
                                 window=window)
            if store.path_for(fkey).exists():
                continue
        spec_key = shm.trace_share_key(cell.workload, options.n_accesses,
                                       options.seed)
        needed[spec_key] = cell.workload
    return needed


def _publish_trace_share(pending: list[tuple[int, str, Cell]], options: Any,
                         store: ResultStore | None) -> shm.TraceShare | None:
    """Generate needed traces once and export them to shared memory.

    Returns ``None`` whenever sharing is off, pointless, or fails —
    workers then regenerate per process exactly as before, so this can
    only ever remove work, never change results.  ``legacy`` fastpath
    mode also opts out: it exists to reproduce the PR 9-era cost model
    for benchmarking.
    """
    if not shm.share_enabled() or fastpath.mode() == "legacy":
        return None
    shm.reap_stale_segments()
    try:
        plan = _trace_share_plan(pending, options, store)
        if not plan:
            return None
        # A local suite, not the executor memo: the parent should not
        # keep private copies of arrays whose lifetime the share owns.
        suite = WorkloadSuite(seed=options.seed)
        traces = {spec_key: suite.trace(workload, options.n_accesses)
                  for spec_key, workload in plan.items()}
    except Exception:
        # e.g. an unknown workload: let the per-cell isolation in the
        # workers report it with retries/keep_going semantics intact.
        return None
    return shm.publish_traces(traces)


def _run_pool(pending: list[tuple[int, str, Cell]], options: Any,
              results: list[dict[str, Any] | None], store: ResultStore | None,
              manifest: RunManifest, policy: ExecutionPolicy,
              journal: CheckpointJournal | None,
              cancel: CancelToken | None = None) -> bool:
    """Fan pending cells across a worker pool with async collection.

    Returns False if no pool could be created (caller falls back to
    serial execution).  On any error — including KeyboardInterrupt —
    the pool is ``terminate()``d, never ``close()``+``join()``ed, so a
    still-running or hung worker cannot wedge the shutdown.

    A :class:`~repro.cancel.CancelToken` is never shipped to workers
    (it is not picklable); instead the collection loop polls it each
    iteration, so a cancel lands within one poll interval and tears the
    whole pool down — already-persisted payloads stay in the store.
    """
    obs_config = obs.current_config()
    fastpath_root = str(store.base) if store is not None else None
    n_workers = min(policy.jobs, len(pending))
    # Shared-memory trace handoff: published once here, attached lazily
    # by workers (by segment name, so it also survives pool rebuilds),
    # unlinked in the finally below when the run is over.  Publishing
    # BEFORE the pool forks matters: the first segment registration
    # starts the parent's resource tracker, and only a tracker already
    # running at fork time is inherited by the workers — otherwise each
    # worker lazily spawns a private tracker that later misreports the
    # parent's (properly unlinked) segments as leaked.
    share = _publish_trace_share(pending, options, store)
    share_spec = share.spec if share is not None else None
    pool = _make_pool(n_workers)
    if pool is None:
        if share is not None:
            share.close()
        return False
    _OBS.debug(obs_names.EVT_POOL_START, jobs=n_workers, pending=len(pending))

    order = [index for index, _, _ in pending]
    queued: list[_Queued] = [
        _Queued(index=index, key=key, cell=cell, rank=rank)
        for rank, (index, key, cell) in enumerate(pending)]
    next_rank = len(queued)
    in_flight: dict[int, _InFlight] = {}
    done: dict[int, _Outcome] = {}
    collect_pos = 0

    def submit(item: _Queued, now: float) -> None:
        handle = pool.apply_async(
            execute_timed,
            ((item.index, item.key, item.cell, options, obs_config,
              policy.faults, item.attempt, fastpath_root, share_spec),))
        deadline = (now + policy.timeout_s + _DISPATCH_GRACE_S
                    if policy.timeout_s is not None else None)
        in_flight[item.index] = _InFlight(handle=handle, key=item.key,
                                          cell=item.cell,
                                          attempt=item.attempt,
                                          deadline=deadline)

    def requeue(index: int, fl: _InFlight, attempt: int, eligible_at: float) -> None:
        nonlocal next_rank
        queued.append(_Queued(index=index, key=fl.key, cell=fl.cell,
                              attempt=attempt, eligible_at=eligible_at,
                              rank=next_rank))
        next_rank += 1

    try:
        while collect_pos < len(pending):
            if cancel is not None:
                # Raises JobCancelled; the except-BaseException arm
                # below terminates the pool on the way out.
                cancel.raise_if_cancelled()
            now = time.monotonic()
            # -- dispatch: fill free worker slots with eligible attempts
            eligible = sorted((q for q in queued if q.eligible_at <= now),
                              key=lambda q: q.rank)
            for item in eligible:
                if len(in_flight) >= n_workers:
                    break
                queued.remove(item)
                submit(item, now)

            progressed = False
            # -- poll: completions, failures, and blown deadlines
            for index, fl in list(in_flight.items()):
                if fl.handle.ready():
                    progressed = True
                    del in_flight[index]
                    try:
                        _, _, payload, telemetry = fl.handle.get()
                    except Exception as exc:
                        action, delay = _attempt_failed(
                            exc, fl.key, fl.cell.label, fl.attempt, policy)
                        if action == "retry":
                            requeue(index, fl, fl.attempt + 1,
                                    time.monotonic() + delay)
                        else:
                            outcome = _Outcome(
                                index=index, key=fl.key, label=fl.cell.label,
                                status=action, attempts=fl.attempt + 1,
                                error=_describe(exc))
                            done[index] = _exhausted(outcome, policy, exc)
                        continue
                    status = "retried" if fl.attempt else "ok"
                    _persist(fl.key, payload, status, store, policy, journal)
                    done[index] = _Outcome(
                        index=index, key=fl.key, label=fl.cell.label,
                        status=status, attempts=fl.attempt + 1,
                        payload=payload, telemetry=telemetry)
                elif fl.deadline is not None and now > fl.deadline:
                    # Hung (or dead-worker) cell: the only safe way to
                    # reclaim the worker is to tear the pool down.
                    progressed = True
                    _OBS.warning(obs_names.EVT_POOL_REBUILD, cell=fl.cell.label,
                                 attempt=fl.attempt + 1,
                                 in_flight=len(in_flight) - 1)
                    pool.terminate()
                    pool.join()
                    del in_flight[index]
                    timeout_exc = RunnerTimeoutError(
                        f"cell {fl.cell.label} exceeded its "
                        f"{policy.timeout_s:g}s budget")
                    action, delay = _attempt_failed(
                        timeout_exc, fl.key, fl.cell.label, fl.attempt, policy)
                    if action == "retry":
                        requeue(index, fl, fl.attempt + 1,
                                time.monotonic() + delay)
                    else:
                        outcome = _Outcome(
                            index=index, key=fl.key, label=fl.cell.label,
                            status=action, attempts=fl.attempt + 1,
                            error=_describe(timeout_exc))
                        done[index] = _exhausted(outcome, policy, timeout_exc)
                    # Innocent victims of the teardown: resubmit at the
                    # same attempt number, no retry charged.
                    for other_index, other in in_flight.items():
                        requeue(other_index, other, other.attempt,
                                time.monotonic())
                    in_flight.clear()
                    pool = _make_pool(n_workers)
                    if pool is None:
                        raise CellFailedError(
                            "could not rebuild worker pool after a cell "
                            "timeout") from timeout_exc
                    break  # restart dispatch/poll against the new pool

            # -- collect: contiguous finished prefix, in input order
            while collect_pos < len(order) and order[collect_pos] in done:
                _finish(done.pop(order[collect_pos]), results, manifest)
                collect_pos += 1

            if not progressed:
                time.sleep(_POLL_S)
    except BaseException:
        # Error path (including KeyboardInterrupt): close()+join() can
        # hang on still-running workers — terminate instead and re-raise.
        pool.terminate()
        pool.join()
        raise
    else:
        pool.close()
        pool.join()
    finally:
        # Unlink after the workers are gone (normal exit) or on the way
        # out of a teardown; attached mappings in any straggler worker
        # stay valid until it exits, but the names leave /dev/shm now.
        if share is not None:
            share.close()
    return True


# ---------------------------------------------------------------------------
# entry point


def run_cells(cells: Sequence[Cell], options: Any,
              policy: ExecutionPolicy | None = None,
              cancel: CancelToken | None = None,
              ) -> tuple[list[dict[str, Any] | None], RunManifest]:
    """Execute ``cells`` under ``policy`` (default: the global policy).

    Returns ``(payloads, manifest)`` with payloads in input order.
    Under ``keep_going``, cells whose retry budget is exhausted leave a
    ``None`` payload and a ``failed``/``timeout`` manifest record
    instead of raising.  ``options`` supplies the trace-shaping
    parameters (``n_accesses``/``warmup_frac``/``seed``/``degree``);
    see :func:`repro.runner.cells.cell_key` for what enters the cache
    key.

    ``cancel`` attaches a :class:`~repro.cancel.CancelToken`: the
    engine checkpoints it every ``check_every`` simulated accesses (and
    publishes progress through it), and a cancel/deadline surfaces as
    :class:`~repro.errors.JobCancelled` from this call — regardless of
    ``keep_going``, because a cancelled run's remaining cells must not
    execute.  Cells persisted before the cancel stay in the store.

    When tracing is on, the whole call is one ``runner.run`` span and
    every executed cell hangs a ``runner.cell`` subtree off it —
    including cells that ran in pool workers, whose spans are shipped
    back and re-parented on absorption.
    """
    policy = policy if policy is not None else _POLICY
    with span(obs_names.SPAN_RUN_CELLS, cells=len(cells), jobs=policy.jobs):
        return _run_cells(cells, options, policy, cancel)


def _run_cells(cells: Sequence[Cell], options: Any, policy: ExecutionPolicy,
               cancel: CancelToken | None = None,
               ) -> tuple[list[dict[str, Any] | None], RunManifest]:
    store = ResultStore(policy.cache_dir) if policy.use_cache else None
    journal: CheckpointJournal | None = None
    completed_keys: set[str] = set()
    if policy.run_id:
        if store is None:
            raise CheckpointError(
                "checkpointing requires the artifact cache "
                "(run_id set with use_cache=False)")
        journal = CheckpointJournal.open(store.base, policy.run_id,
                                         resume=policy.resume)
        if policy.resume:
            completed_keys = set(journal.seen)
            _OBS.info(obs_names.EVT_RUN_RESUMED, run_id=policy.run_id,
                      journaled=len(completed_keys))
    manifest = RunManifest(jobs=policy.jobs, cache_enabled=policy.use_cache,
                           run_id=policy.run_id or "")
    start = time.perf_counter()

    try:
        results: list[dict[str, Any] | None] = [None] * len(cells)
        pending: list[tuple[int, str, Cell]] = []
        for index, cell in enumerate(cells):
            key = cell_key(cell, options)
            payload = store.get(key) if store is not None else None
            if payload is not None:
                results[index] = payload
                manifest.record_hit(key, cell.label)
                if key in completed_keys:
                    _OBS.debug(obs_names.EVT_CHECKPOINT_SKIP, cell=cell.label,
                               key=key[:12])
                else:
                    _OBS.debug(obs_names.EVT_CELL_CACHED, cell=cell.label, key=key[:12])
                if journal is not None:
                    journal.record(key, "hit")
            else:
                if key in completed_keys:
                    _OBS.warning(obs_names.EVT_CHECKPOINT_MISSING_ARTIFACT,
                                 cell=cell.label, key=key[:12])
                pending.append((index, key, cell))

        if pending:
            if policy.jobs > 1 and len(pending) > 1:
                if _run_pool(pending, options, results, store, manifest,
                             policy, journal, cancel):
                    manifest.mode = "pool"
                else:
                    _run_serial(pending, options, results, store, manifest,
                                policy, journal, cancel)
                    manifest.mode = "serial-fallback"
            else:
                _run_serial(pending, options, results, store, manifest,
                            policy, journal, cancel)
    finally:
        if journal is not None:
            journal.close()

    manifest.wall_s = time.perf_counter() - start
    if _OBS.enabled:
        _OBS.info(obs_names.EVT_RUN_SUMMARY, cells=manifest.n_cells, hits=manifest.hits,
                  executed=manifest.misses, failed=manifest.failed,
                  retried=manifest.retried, jobs=manifest.jobs,
                  mode=manifest.mode, run_id=manifest.run_id,
                  wall_s=round(manifest.wall_s, 6),
                  compute_s=round(manifest.executed_s, 6),
                  cpu_s=round(manifest.executed_cpu_s, 6),
                  utilization=round(manifest.utilization, 4))
    return results, manifest
