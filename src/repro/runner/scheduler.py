"""Cell scheduler: cache probe, pool fan-out, ordered collection.

``run_cells`` is the single entry point.  For every cell it first
probes the artifact store; only misses are executed, either in-process
(``jobs == 1`` or pool unavailable) or across a ``multiprocessing``
pool.  Results always come back in input order regardless of worker
completion order, so experiments can zip cells to payloads positionally
and parallel output is bit-identical to serial output.

The execution policy (worker count, cache on/off, cache root) is a
process-wide setting written by the CLI before experiments run; library
callers can pass an explicit policy instead.  Policy knobs never enter
cache keys — see :mod:`repro.runner.cells`.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Sequence

from .. import obs
from .cells import Cell, cell_key
from .execute import CellTelemetry, execute_timed
from .manifest import RunManifest
from .store import ResultStore

#: Scheduler telemetry scope (off until obs.configure()).
_OBS = obs.scope("runner.scheduler")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How cells run: parallelism and caching. Never affects results.

    ``use_cache`` defaults to ``False`` so plain library calls
    (``run_experiment`` from tests or notebooks) never write to the
    working directory as a side effect; the CLI opts in explicitly
    (``domino-repro run`` caches unless ``--no-cache`` is given).
    """

    jobs: int = 1
    use_cache: bool = False
    cache_dir: str | Path | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")


_POLICY = ExecutionPolicy()


def set_policy(policy: ExecutionPolicy | None = None, **overrides: Any) -> ExecutionPolicy:
    """Install the process-wide execution policy (CLI entry point)."""
    global _POLICY
    base = policy if policy is not None else ExecutionPolicy()
    _POLICY = replace(base, **overrides) if overrides else base
    return _POLICY


def get_policy() -> ExecutionPolicy:
    return _POLICY


def _collect(index: int, key: str, label: str, payload: dict,
             telemetry: CellTelemetry, results: list,
             store: ResultStore | None, manifest: RunManifest) -> None:
    """Fold one executed cell's payload + telemetry into the run.

    Worker events are absorbed into the parent's trace tagged with the
    cell label; collection happens in ``imap`` (input) order, so the
    assembled trace is identical for serial and pool execution.
    """
    results[index] = payload
    if store is not None:
        store.put(key, payload)
    manifest.record_executed(key, label, telemetry.wall_s, telemetry.cpu_s)
    if _OBS.enabled:
        obs.absorb(telemetry.events, telemetry.metrics, tag={"cell": label})
        _OBS.info("cell_executed", cell=label, key=key[:12],
                  wall_s=round(telemetry.wall_s, 6),
                  cpu_s=round(telemetry.cpu_s, 6),
                  events=len(telemetry.events), dropped=telemetry.dropped)
        if telemetry.profile:
            _OBS.info("cell_profile", cell=label, rows=telemetry.profile)


def _run_serial(pending: list[tuple[int, str, Cell]], options: Any,
                results: list, store: ResultStore | None,
                manifest: RunManifest) -> None:
    obs_config = obs.current_config()
    for index, key, cell in pending:
        _, _, payload, telemetry = execute_timed(
            (index, key, cell, options, obs_config))
        _collect(index, key, cell.label, payload, telemetry,
                 results, store, manifest)


def _run_pool(pending: list[tuple[int, str, Cell]], options: Any,
              results: list, store: ResultStore | None,
              manifest: RunManifest, jobs: int) -> bool:
    """Fan pending cells across a worker pool. False if no pool could
    be created (caller falls back to serial execution)."""
    labels = {index: cell.label for index, key, cell in pending}
    obs_config = obs.current_config()
    work = [(index, key, cell, options, obs_config)
            for index, key, cell in pending]
    try:
        pool = multiprocessing.Pool(processes=min(jobs, len(work)))
    except (OSError, ValueError, ImportError):
        return False
    _OBS.debug("pool_start", jobs=min(jobs, len(work)), pending=len(work))
    try:
        for index, key, payload, telemetry in pool.imap(execute_timed, work):
            _collect(index, key, labels[index], payload, telemetry,
                     results, store, manifest)
    finally:
        pool.close()
        pool.join()
    return True


def run_cells(cells: Sequence[Cell], options: Any,
              policy: ExecutionPolicy | None = None) -> tuple[list[dict], RunManifest]:
    """Execute ``cells`` under ``policy`` (default: the global policy).

    Returns ``(payloads, manifest)`` with payloads in input order.
    ``options`` supplies the trace-shaping parameters
    (``n_accesses``/``warmup_frac``/``seed``/``degree``); see
    :func:`repro.runner.cells.cell_key` for what enters the cache key.
    """
    policy = policy if policy is not None else _POLICY
    store = ResultStore(policy.cache_dir) if policy.use_cache else None
    manifest = RunManifest(jobs=policy.jobs, cache_enabled=policy.use_cache)
    start = time.perf_counter()

    results: list = [None] * len(cells)
    pending: list[tuple[int, str, Cell]] = []
    for index, cell in enumerate(cells):
        key = cell_key(cell, options)
        payload = store.get(key) if store is not None else None
        if payload is not None:
            results[index] = payload
            manifest.record_hit(key, cell.label)
            _OBS.debug("cell_cached", cell=cell.label, key=key[:12])
        else:
            pending.append((index, key, cell))

    if pending:
        if policy.jobs > 1 and len(pending) > 1:
            if _run_pool(pending, options, results, store, manifest, policy.jobs):
                manifest.mode = "pool"
            else:
                _run_serial(pending, options, results, store, manifest)
                manifest.mode = "serial-fallback"
        else:
            _run_serial(pending, options, results, store, manifest)

    manifest.wall_s = time.perf_counter() - start
    if _OBS.enabled:
        _OBS.info("run_summary", cells=manifest.n_cells, hits=manifest.hits,
                  executed=manifest.misses, jobs=manifest.jobs,
                  mode=manifest.mode, wall_s=round(manifest.wall_s, 6),
                  compute_s=round(manifest.executed_s, 6),
                  cpu_s=round(manifest.executed_cpu_s, 6),
                  utilization=round(manifest.utilization, 4))
    return results, manifest
