"""Run-scoped checkpoint journals: crash-safe records of completed cells.

A long sweep killed at 80% should not restart from zero.  The scheduler
opens one :class:`CheckpointJournal` per ``--run-id`` and appends a line
for every cell whose payload has been durably persisted to the artifact
store.  Each append is flushed *and* fsync'd before the scheduler moves
on, so after a SIGKILL the journal holds exactly the cells whose
artifacts are safe on disk — ``domino-repro run --resume <run-id>``
loads the journal, skips those cells, and reproduces bit-identical
payloads from the store.

Layout (under the artifact-store base, ``.domino-cache/runs/`` by
default)::

    .domino-cache/
      runs/
        <run-id>.ckpt        # JSONL: header line, then one line per cell

The journal is append-only JSONL: a header ``{"schema", "run_id"}``
followed by ``{"key", "status"}`` records.  Loading tolerates a torn
final line (the one write a crash can interrupt) but refuses files that
are not checkpoint journals at all — resuming against the wrong file is
a user error worth a loud :class:`~repro.errors.CheckpointError`.

The journal never stores payloads; those live in the content-addressed
store.  A journaled key whose artifact has since been evicted simply
re-executes — the journal is an optimisation and an audit record, never
a second source of truth.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Any

from ..errors import CheckpointError

#: Bump on any backwards-incompatible change to the journal line format.
SCHEMA_VERSION = 1

#: Directory (under the store base) holding per-run journals.
RUNS_DIR = "runs"

_RUN_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")


def validate_run_id(run_id: str) -> str:
    """A run id must be a safe filename component."""
    if not _RUN_ID_RE.match(run_id):
        raise CheckpointError(
            f"invalid run id {run_id!r}: use letters, digits, '.', '_', '-' "
            "(max 128 chars, must not start with a separator)")
    return run_id


class CheckpointJournal:
    """Append-only, fsync'd journal of one run's completed cell keys."""

    def __init__(self, path: str | Path, run_id: str) -> None:
        self.path = Path(path)
        self.run_id = run_id
        #: Keys already journaled (loaded on resume; grows on record()).
        self.seen: set[str] = set()
        self._fh = None

    # -- construction ---------------------------------------------------
    @classmethod
    def open(cls, base: str | Path, run_id: str,
             resume: bool = False) -> "CheckpointJournal":
        """Open the journal for ``run_id`` under store base ``base``.

        A fresh run truncates any stale journal with the same id; a
        resumed run loads the completed-key set and keeps appending.
        Raises :class:`CheckpointError` when resuming a run that never
        checkpointed.
        """
        validate_run_id(run_id)
        path = Path(base) / RUNS_DIR / f"{run_id}.ckpt"
        journal = cls(path, run_id)
        if resume:
            if not path.is_file():
                raise CheckpointError(
                    f"cannot resume run {run_id!r}: no checkpoint at {path}")
            journal.seen = journal.load()
            journal._open_fh(truncate=False)
        else:
            journal._open_fh(truncate=True)
            journal._append({"schema": SCHEMA_VERSION, "run_id": run_id})
        return journal

    def _open_fh(self, truncate: bool) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w" if truncate else "a", encoding="utf-8")

    # -- reading --------------------------------------------------------
    def load(self) -> set[str]:
        """Completed cell keys recorded in the journal on disk.

        Tolerates a torn trailing line (interrupted final append) but
        rejects files whose header is missing or wrong — that means the
        path is not a journal this code wrote.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError as exc:
            raise CheckpointError(
                f"cannot read checkpoint {self.path}: {exc}") from exc
        lines = text.splitlines()
        if not lines:
            raise CheckpointError(f"checkpoint {self.path} is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            header = None
        if not isinstance(header, dict) or header.get("schema") != SCHEMA_VERSION:
            raise CheckpointError(
                f"{self.path} is not a v{SCHEMA_VERSION} checkpoint journal")
        keys: set[str] = set()
        for lineno, line in enumerate(lines[1:], start=2):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines):  # torn tail from a killed writer
                    break
                raise CheckpointError(
                    f"corrupt checkpoint record at {self.path}:{lineno}") from None
            if isinstance(record, dict) and isinstance(record.get("key"), str):
                keys.add(record["key"])
        return keys

    # -- writing --------------------------------------------------------
    def record(self, key: str, status: str = "ok") -> None:
        """Durably journal one completed cell (atomic append + fsync)."""
        if key in self.seen:
            return
        self._append({"key": key, "status": status})
        self.seen.add(key)

    def _append(self, record: dict[str, Any]) -> None:
        if self._fh is None:  # pragma: no cover - misuse guard
            raise CheckpointError("checkpoint journal is closed")
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
