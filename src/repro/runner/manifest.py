"""Per-run manifests: what ran, what was cached, and how it ended.

A :class:`RunManifest` is produced by every
:func:`repro.runner.scheduler.run_cells` call.  Experiments attach it
to their :class:`~repro.experiments.common.ExperimentResult` so the CLI
can print the one-line cache/parallelism summary after each table, and
tests use it to assert hit/miss and failure accounting.

Serialised manifests carry a ``version`` field (``SCHEMA_VERSION``);
:meth:`RunManifest.from_dict` refuses unknown versions with a clear
error so tooling reading old or future manifests fails loudly instead
of with a ``KeyError`` three stack frames later.  Schema v2 added
per-cell CPU time (``cpu_s``) next to wall time, which is what makes
the worker-utilization accounting in ``obs summary`` possible.  Schema
v3 added the fault-tolerance fields: per-cell ``status`` / ``attempts``
/ ``error`` and the run's ``run_id``, so a degraded run's manifest
records exactly which cells failed, timed out, or needed retries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import RunnerError

#: Bump on any backwards-incompatible change to :meth:`RunManifest.to_dict`.
SCHEMA_VERSION = 3

#: Per-cell outcome statuses (see docs/ROBUSTNESS.md).
CELL_STATUSES = ("hit", "ok", "retried", "failed", "timeout")


@dataclass
class CellRecord:
    """Outcome of one cell within a run.

    ``status`` is one of :data:`CELL_STATUSES`: ``hit`` (served from the
    artifact cache or a resumed checkpoint), ``ok`` (executed first
    try), ``retried`` (executed after >= 1 failed attempts), ``failed``
    / ``timeout`` (retry budget exhausted; ``error`` holds the last
    failure, the payload slot holds ``None``).
    """

    key: str
    label: str
    cached: bool
    wall_s: float = 0.0
    cpu_s: float = 0.0
    status: str = "ok"
    attempts: int = 1
    error: str = ""

    def __post_init__(self) -> None:
        if self.status not in CELL_STATUSES:
            raise RunnerError(f"unknown cell status {self.status!r}; "
                              f"expected one of {CELL_STATUSES}")

    @property
    def ok(self) -> bool:
        return self.status in ("hit", "ok", "retried")


@dataclass
class RunManifest:
    """Accounting for one ``run_cells`` invocation."""

    jobs: int = 1
    cache_enabled: bool = True
    #: "serial", "pool", or "serial-fallback" (pool unavailable).
    mode: str = "serial"
    #: Checkpoint run id, "" when the run is not journaled.
    run_id: str = ""
    cells: list[CellRecord] = field(default_factory=list)
    wall_s: float = 0.0

    # -- recording ------------------------------------------------------
    def record_hit(self, key: str, label: str) -> None:
        self.cells.append(CellRecord(key=key, label=label, cached=True,
                                     status="hit", attempts=0))

    def record_executed(self, key: str, label: str, wall_s: float,
                        cpu_s: float = 0.0, status: str = "ok",
                        attempts: int = 1) -> None:
        self.cells.append(CellRecord(key=key, label=label, cached=False,
                                     wall_s=wall_s, cpu_s=cpu_s,
                                     status=status, attempts=attempts))

    def record_failed(self, key: str, label: str, status: str,
                      attempts: int, error: str,
                      wall_s: float = 0.0) -> None:
        """A cell that exhausted its retry budget (no payload)."""
        self.cells.append(CellRecord(key=key, label=label, cached=False,
                                     wall_s=wall_s, status=status,
                                     attempts=attempts, error=error))

    # -- accounting -----------------------------------------------------
    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def hits(self) -> int:
        return sum(1 for c in self.cells if c.cached)

    @property
    def misses(self) -> int:
        return self.n_cells - self.hits

    @property
    def failed(self) -> int:
        """Cells with no payload after all retries (failed or timeout)."""
        return sum(1 for c in self.cells if not c.ok)

    @property
    def retried(self) -> int:
        """Cells that succeeded but needed at least one retry."""
        return sum(1 for c in self.cells if c.status == "retried")

    @property
    def complete(self) -> bool:
        """True when every cell produced a payload."""
        return self.failed == 0

    @property
    def executed_s(self) -> float:
        """Summed per-cell execution time (CPU-side work, all workers)."""
        return sum(c.wall_s for c in self.cells if not c.cached)

    @property
    def executed_cpu_s(self) -> float:
        """Summed per-cell CPU time across all workers."""
        return sum(c.cpu_s for c in self.cells if not c.cached)

    @property
    def utilization(self) -> float:
        """Fraction of the worker pool's wall-clock capacity spent
        computing cells: ``executed_s / (wall_s * jobs)``, 0.0 when the
        run did no timed work."""
        capacity = self.wall_s * self.jobs
        return min(1.0, self.executed_s / capacity) if capacity > 0 else 0.0

    @property
    def slowest_cells(self) -> list[CellRecord]:
        """Executed cells ordered slowest-first (telemetry summaries)."""
        return sorted((c for c in self.cells if not c.cached),
                      key=lambda c: -c.wall_s)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (for logs and tooling)."""
        return {
            "version": SCHEMA_VERSION,
            "jobs": self.jobs,
            "cache_enabled": self.cache_enabled,
            "mode": self.mode,
            "run_id": self.run_id,
            "wall_s": self.wall_s,
            "executed_s": self.executed_s,
            "executed_cpu_s": self.executed_cpu_s,
            "utilization": self.utilization,
            "failed": self.failed,
            "retried": self.retried,
            "cells": [{"key": c.key, "label": c.label, "cached": c.cached,
                       "wall_s": c.wall_s, "cpu_s": c.cpu_s,
                       "status": c.status, "attempts": c.attempts,
                       "error": c.error}
                      for c in self.cells],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunManifest":
        """Rehydrate a serialised manifest, validating its schema.

        Raises :class:`RunnerError` on a missing or unknown ``version``
        and on structurally broken cell records.
        """
        version = data.get("version")
        if version is None:
            raise RunnerError(
                "manifest has no 'version' field; refusing to guess its schema")
        if version != SCHEMA_VERSION:
            raise RunnerError(
                f"unsupported manifest schema version {version!r} "
                f"(this build reads version {SCHEMA_VERSION})")
        manifest = cls(jobs=int(data.get("jobs", 1)),
                       cache_enabled=bool(data.get("cache_enabled", True)),
                       mode=str(data.get("mode", "serial")),
                       run_id=str(data.get("run_id", "")),
                       wall_s=float(data.get("wall_s", 0.0)))
        try:
            for cell in data.get("cells", []):
                manifest.cells.append(CellRecord(
                    key=str(cell["key"]), label=str(cell["label"]),
                    cached=bool(cell["cached"]),
                    wall_s=float(cell.get("wall_s", 0.0)),
                    cpu_s=float(cell.get("cpu_s", 0.0)),
                    status=str(cell.get("status", "ok")),
                    attempts=int(cell.get("attempts", 1)),
                    error=str(cell.get("error", ""))))
        except (KeyError, TypeError, ValueError) as exc:
            raise RunnerError(f"malformed manifest cell record: {exc}") from None
        return manifest

    def merged_with(self, other: "RunManifest") -> "RunManifest":
        """Combine accounting of two runs (e.g. sub-sweeps of one figure)."""
        merged = RunManifest(jobs=max(self.jobs, other.jobs),
                             cache_enabled=self.cache_enabled and other.cache_enabled,
                             mode=self.mode if self.mode == other.mode else "mixed",
                             run_id=self.run_id or other.run_id,
                             wall_s=self.wall_s + other.wall_s)
        merged.cells = [*self.cells, *other.cells]
        return merged
