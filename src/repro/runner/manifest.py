"""Per-run manifests: what ran, what was cached, and how long it took.

A :class:`RunManifest` is produced by every
:func:`repro.runner.scheduler.run_cells` call.  Experiments attach it
to their :class:`~repro.experiments.common.ExperimentResult` so the CLI
can print the one-line cache/parallelism summary after each table, and
tests use it to assert hit/miss accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CellRecord:
    """Outcome of one cell within a run."""

    key: str
    label: str
    cached: bool
    wall_s: float = 0.0


@dataclass
class RunManifest:
    """Accounting for one ``run_cells`` invocation."""

    jobs: int = 1
    cache_enabled: bool = True
    #: "serial", "pool", or "serial-fallback" (pool unavailable).
    mode: str = "serial"
    cells: list[CellRecord] = field(default_factory=list)
    wall_s: float = 0.0

    # -- recording ------------------------------------------------------
    def record_hit(self, key: str, label: str) -> None:
        self.cells.append(CellRecord(key=key, label=label, cached=True))

    def record_executed(self, key: str, label: str, wall_s: float) -> None:
        self.cells.append(CellRecord(key=key, label=label, cached=False,
                                     wall_s=wall_s))

    # -- accounting -----------------------------------------------------
    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def hits(self) -> int:
        return sum(1 for c in self.cells if c.cached)

    @property
    def misses(self) -> int:
        return self.n_cells - self.hits

    @property
    def executed_s(self) -> float:
        """Summed per-cell execution time (CPU-side work, all workers)."""
        return sum(c.wall_s for c in self.cells if not c.cached)

    def to_dict(self) -> dict:
        """JSON-serialisable form (for logs and tooling)."""
        return {
            "jobs": self.jobs,
            "cache_enabled": self.cache_enabled,
            "mode": self.mode,
            "wall_s": self.wall_s,
            "cells": [{"key": c.key, "label": c.label, "cached": c.cached,
                       "wall_s": c.wall_s} for c in self.cells],
        }

    def merged_with(self, other: "RunManifest") -> "RunManifest":
        """Combine accounting of two runs (e.g. sub-sweeps of one figure)."""
        merged = RunManifest(jobs=max(self.jobs, other.jobs),
                             cache_enabled=self.cache_enabled and other.cache_enabled,
                             mode=self.mode if self.mode == other.mode else "mixed",
                             wall_s=self.wall_s + other.wall_s)
        merged.cells = [*self.cells, *other.cells]
        return merged
