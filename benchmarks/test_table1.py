"""Benchmark: regenerate table1 (Table I, evaluation parameters)."""


def test_table1(run_quick):
    result = run_quick("table1")
    assert result.rows
