"""Benchmark: regenerate fig11 (full comparison, degree 1)."""


def test_fig11(run_quick):
    result = run_quick("fig11")
    assert result.rows
