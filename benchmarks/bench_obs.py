#!/usr/bin/env python
"""Observability overhead harness: spans-on vs. obs-off, same grid.

Spans promise to *observe without perturbing*: turning tracing on must
not change results and must not meaningfully slow the runner.  This
harness runs one fig11-style sweep twice over identical warm in-process
state — telemetry fully off, then telemetry on at info level with span
tracing — and gates on three contracts:

* **overhead** — the spans-on pass may cost at most ``--max-overhead``
  (default 5%) over the obs-off pass, best-of-``--repeats`` wall
  clock on both sides so scheduler noise cancels;
* **bit identity** — both passes must produce identical payload lists
  (the instrumented==uninstrumented regression gate);
* **forest soundness** — the traced pass must leave a well-formed span
  forest: every cell span under the run span, no orphans, no
  duplicate ids, exactly one root per trace
  (:func:`repro.obs.trace.validate_forest`).

Results go to a JSON report (``BENCH_PR7.json``); the exit status is
non-zero if any gate fails, so CI can run this directly.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py \
        --jobs 2 --n 20000 --out BENCH_PR7.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any

from repro import obs
from repro.experiments.common import ExperimentOptions
from repro.experiments.fig11_degree1 import build_cells
from repro.obs.trace import validate_forest
from repro.runner import ExecutionPolicy, run_cells


def _timed_pass(cells: Any, options: ExperimentOptions,
                policy: ExecutionPolicy) -> tuple[float, list]:
    started = time.perf_counter()
    payloads, manifest = run_cells(cells, options, policy)
    elapsed = time.perf_counter() - started
    if manifest.failed:
        raise SystemExit(f"benchmark pass had {manifest.failed} failed cells")
    return elapsed, payloads


def run_benchmark(args: argparse.Namespace) -> dict[str, Any]:
    options = ExperimentOptions(n_accesses=args.n,
                                workloads=tuple(args.workloads), seed=7)
    cells = build_cells(options, degree=args.degree)
    policy = ExecutionPolicy(jobs=args.jobs, use_cache=False)

    # Warmup: memoise generated traces so neither timed pass pays the
    # one-off generation cost (forked workers inherit the memos).
    obs.disable()
    run_cells(cells, options, policy)

    off_times: list[float] = []
    on_times: list[float] = []
    off_payloads: list | None = None
    on_payloads: list | None = None
    spans: list[dict[str, Any]] = []
    span_problems: list[str] = []
    # Alternate the two modes so drift (thermal, page cache, CI
    # neighbours) hits both evenly instead of biasing one side.
    for _ in range(args.repeats):
        obs.disable()
        elapsed, off_payloads = _timed_pass(cells, options, policy)
        off_times.append(elapsed)

        state = obs.configure(level=obs.parse_level("info"))
        try:
            elapsed, on_payloads = _timed_pass(cells, options, policy)
            on_times.append(elapsed)
            spans = state.spans.spans()
            span_problems = validate_forest(spans)
        finally:
            obs.disable()

    best_off, best_on = min(off_times), min(on_times)
    overhead = (best_on - best_off) / best_off
    span_names = sorted({s.get("name", "?") for s in spans})
    report = {
        "benchmark": "obs_overhead",
        "grid": {"cells": len(cells), "workloads": list(options.workloads),
                 "n_accesses": options.n_accesses, "degree": args.degree,
                 "jobs": args.jobs, "repeats": args.repeats},
        "obs_off_s": {"best": round(best_off, 4),
                      "all": [round(t, 4) for t in off_times]},
        "spans_on_s": {"best": round(best_on, 4),
                       "all": [round(t, 4) for t in on_times]},
        "overhead_frac": round(overhead, 4),
        "max_overhead_frac": args.max_overhead,
        "payloads_identical": off_payloads == on_payloads,
        "spans": {"count": len(spans), "names": span_names,
                  "traces": len({s.get("trace") for s in spans}),
                  "problems": span_problems},
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=20_000,
                        help="accesses per cell (default 20000)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="runner worker processes (default 2)")
    parser.add_argument("--degree", type=int, default=1)
    parser.add_argument("--workloads", nargs="+", default=["oltp"])
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repeats per mode, best-of wins")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="gate: max (on-off)/off fraction (default .05)")
    parser.add_argument("--out", default="BENCH_PR7.json")
    args = parser.parse_args(argv)

    report = run_benchmark(args)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))

    failures = []
    if report["overhead_frac"] > args.max_overhead:
        failures.append(
            f"overhead {report['overhead_frac']:.1%} exceeds the "
            f"{args.max_overhead:.0%} gate")
    if not report["payloads_identical"]:
        failures.append("spans-on payloads differ from obs-off payloads")
    if report["spans"]["count"] == 0:
        failures.append("traced pass recorded no spans")
    if report["spans"]["problems"]:
        failures.append(f"span forest problems: {report['spans']['problems']}")
    if "runner.run" not in report["spans"]["names"] \
            or "runner.cell" not in report["spans"]["names"]:
        failures.append(f"span names missing: {report['spans']['names']}")
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
