"""Benchmark: regenerate table2 (Table II, workload catalogue)."""


def test_table2(run_quick):
    result = run_quick("table2")
    assert result.rows
