"""Benchmark: regenerate fig02 (average stream length)."""


def test_fig02(run_quick):
    result = run_quick("fig02")
    assert result.rows
