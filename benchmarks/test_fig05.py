"""Benchmark: regenerate fig05 (coverage/overprediction vs lookup depth)."""


def test_fig05(run_quick):
    result = run_quick("fig05")
    assert result.rows
