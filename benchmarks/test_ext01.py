"""Benchmark: regenerate ext01 (heterogeneous-mix speedups, extension)."""


def test_ext01(run_quick):
    result = run_quick("ext01")
    assert result.rows
