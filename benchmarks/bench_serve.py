#!/usr/bin/env python
"""Serve-tier saturation harness: overload honestly, degrade gracefully.

Boots a real :class:`~repro.serve.ExperimentServer` on a loopback
socket, measures one job's service time to calibrate the offered load,
then drives a seeded multi-tenant Poisson arrival process at a
configurable multiple of the server's capacity (default 4x).  The
claims under test are the PR's acceptance criteria:

* **bit identity** — a job fetched through the wire equals the same
  spec computed by ``run_cells`` in-process, payload for payload;
* **graceful overload** — every job is either completed or shed at
  admission (nothing fails, errors, or vanishes mid-run), and at 4x
  saturation shedding actually happens;
* **fairness** — the Jain index over equal-weight tenants' completions
  stays above ``--min-fairness`` (0.9).

Results go to a JSON report (``BENCH_PR6.json``) and the exit status
is non-zero if any gate fails, so CI can gate on it.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py --out BENCH_PR6.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.runner import ExecutionPolicy, run_cells
from repro.serve import (AdmissionConfig, ExperimentServer, JobSpec,
                         LoadGenConfig, ServeClient, ServeConfig)
from repro.serve.loadgen import run_loadgen_async

#: Small but real work: service time is simulation, not framing.
BENCH_SPEC: dict[str, Any] = {
    "workload": "sat_solver",
    "prefetcher": "domino",
    "kind": "trace",
    "degrees": [1],
    "n_accesses": 4_000,
}


async def _check_bit_identity(server: ExperimentServer) -> bool:
    """Served payloads == batch payloads for one two-cell spec."""
    spec = {**BENCH_SPEC, "degrees": [1, 4], "seed": 977}
    async with await ServeClient.connect(server.address, "identity") as client:
        served = await client.run_job(spec, "identity-1")
    if served.status != "ok":
        return False
    cells, options = JobSpec.from_dict(spec).compile()
    batch, manifest = run_cells(cells, options,
                                ExecutionPolicy(jobs=1, use_cache=False))
    return manifest.failed == 0 and served.payloads == batch


async def _calibrate(server: ExperimentServer) -> float:
    """Median service time of a few solo jobs (empty server)."""
    samples = []
    async with await ServeClient.connect(server.address, "calib") as client:
        for i in range(3):
            result = await client.run_job(
                {**BENCH_SPEC, "seed": 5000 + i}, f"calib-{i}")
            if result.status != "ok":
                raise RuntimeError(f"calibration job {i}: {result.status} "
                                   f"{result.reason}")
            samples.append(result.service_s)
    return sorted(samples)[len(samples) // 2]


async def _bench(args: argparse.Namespace,
                 cache_dir: Path) -> dict[str, Any]:
    config = ServeConfig(
        port=0, slots=args.slots, cache_dir=cache_dir,
        admission=AdmissionConfig(
            max_queued_total=args.slots * 8,
            max_queued_per_tenant=4))
    server = ExperimentServer(config)
    await server.start()
    try:
        identical = await _check_bit_identity(server)
        service_s = await _calibrate(server)
        # Offered load = tenants * rate_hz jobs/s; capacity = slots /
        # service_s.  Solve rate_hz for the requested saturation.
        rate_hz = (args.saturation * args.slots
                   / (args.tenants * max(service_s, 1e-3)))
        loadgen = LoadGenConfig(
            address=server.address, tenants=args.tenants,
            jobs_per_tenant=args.jobs_per_tenant, rate_hz=rate_hz,
            spec=dict(BENCH_SPEC), seed=args.seed,
            job_timeout_s=args.job_timeout_s)
        started = time.perf_counter()
        report = await run_loadgen_async(loadgen)
        wall_s = time.perf_counter() - started
    finally:
        await server.aclose()

    accounted = report["completed"] + report["shed"] == report["submitted"]
    gates = {
        "bit_identical": identical,
        "no_errors": report["errors"] == 0,
        "no_failed": report["failed"] == 0,
        "all_accounted": accounted,
        "overload_reached": report["shed"] > 0,
        "fairness": report["fairness_jain"] >= args.min_fairness,
    }
    return {
        "benchmark": "serve_saturation",
        "spec": BENCH_SPEC,
        "slots": args.slots,
        "tenants": args.tenants,
        "jobs_per_tenant": args.jobs_per_tenant,
        "seed": args.seed,
        "saturation_target": args.saturation,
        "calibrated_service_s": round(service_s, 4),
        "rate_hz_per_tenant": round(rate_hz, 4),
        "wall_s": round(wall_s, 3),
        "min_fairness": args.min_fairness,
        "loadgen": report,
        "gates": gates,
        "pass": all(gates.values()),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--slots", type=int, default=2,
                        help="server worker slots")
    parser.add_argument("--tenants", type=int, default=4,
                        help="equal-weight tenants")
    parser.add_argument("--jobs-per-tenant", type=int, default=10)
    parser.add_argument("--saturation", type=float, default=4.0,
                        help="offered load as a multiple of capacity")
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--min-fairness", type=float, default=0.9,
                        help="fail below this Jain index")
    parser.add_argument("--job-timeout-s", type=float, default=120.0)
    parser.add_argument("--out", default="BENCH_PR6.json",
                        help="JSON report path")
    parser.add_argument("--cache-dir", default=None,
                        help="artifact store root (default: fresh temp dir)")
    args = parser.parse_args(argv)

    cache_dir = Path(args.cache_dir) if args.cache_dir else Path(
        tempfile.mkdtemp(prefix="bench-serve-"))
    print(f"serve bench: {args.slots} slots, {args.tenants} tenants x "
          f"{args.jobs_per_tenant} jobs at {args.saturation:g}x saturation")
    report = asyncio.run(_bench(args, cache_dir))
    load = report["loadgen"]
    print(f"service {report['calibrated_service_s']:.3f}s/job, offered "
          f"{report['rate_hz_per_tenant']:.2f} jobs/s/tenant")
    print(f"completed {load['completed']}/{load['submitted']}, shed "
          f"{load['shed']} (rate {load['shed_rate']:.2f}), p99 "
          f"{load['latency_s']['p99']:.3f}s, fairness "
          f"{load['fairness_jain']:.4f}")
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n",
                              encoding="utf-8")
    failures = [name for name, ok in report["gates"].items() if not ok]
    if failures:
        print(f"FAIL: {', '.join(failures)} -> {args.out}", file=sys.stderr)
        return 1
    print(f"all gates pass -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
