"""Benchmark: regenerate ext02 (memory-latency sensitivity, extension)."""


def test_ext02(run_quick):
    result = run_quick("ext02")
    assert result.rows
