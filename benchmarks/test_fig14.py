"""Benchmark: regenerate fig14 (quad-core speedup)."""


def test_fig14(run_quick):
    result = run_quick("fig14")
    assert result.rows
