"""Benchmark: regenerate fig15 (off-chip traffic overhead)."""


def test_fig15(run_quick):
    result = run_quick("fig15")
    assert result.rows
