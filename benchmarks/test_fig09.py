"""Benchmark: regenerate fig09 (Domino coverage vs HT size)."""


def test_fig09(run_quick):
    result = run_quick("fig09")
    assert result.rows
