"""Benchmark: regenerate fig06 (metadata round-trip timing)."""


def test_fig06(run_quick):
    result = run_quick("fig06")
    assert result.rows
    by_name = {row[0]: row for row in result.rows}
    assert by_name["stms"][1] == 2
    assert by_name["domino"][1] == 1
