"""Benchmark: regenerate fig16 (spatio-temporal stack)."""


def test_fig16(run_quick):
    result = run_quick("fig16")
    assert result.rows
