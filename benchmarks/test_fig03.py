"""Benchmark: regenerate fig03 (lookup accuracy vs depth)."""


def test_fig03(run_quick):
    result = run_quick("fig03")
    assert result.rows
    for row in result.rows:
        assert row[2] >= row[1] - 0.05  # depth 2 at least as accurate
