"""Benchmark: regenerate fig01 (coverage gap: STMS/ISB vs opportunity)."""


def test_fig01(run_quick):
    result = run_quick("fig01")
    assert result.rows
    # On average, STMS must sit at or below the Sequitur opportunity
    # (per-workload slack: at reduced trace sizes the engine can exceed
    # the conservative grammar-based estimate on spatial workloads).
    average = result.rows[-1]
    assert average[2] <= average[3] + 0.12
