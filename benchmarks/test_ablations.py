"""Ablation benches for the design choices DESIGN.md §5 calls out.

Each sweeps one Domino design parameter on the OLTP workload (the
paper's showcase) and records coverage so regressions in a design knob
are visible in benchmark history.
"""

import pytest

from repro.config import SystemConfig
from repro.prefetchers.registry import make_prefetcher
from repro.sim.engine import simulate_trace
from repro.workloads import default_suite

N_ACCESSES = 60_000
WARMUP = N_ACCESSES // 2


@pytest.fixture(scope="module")
def oltp_trace():
    return default_suite().trace("oltp", N_ACCESSES)


def _coverage(trace, config, **kwargs):
    prefetcher = make_prefetcher("domino", config, **kwargs)
    return simulate_trace(trace, config, prefetcher, warmup=WARMUP).coverage


def test_ablation_eit_entries_per_super(benchmark, oltp_trace):
    """Paper: three (address, pointer) entries per super-entry."""

    def sweep():
        return {n: _coverage(oltp_trace,
                             SystemConfig().scaled(eit_entries_per_super=n))
                for n in (1, 2, 3, 6)}

    coverages = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["coverage_by_entries"] = coverages
    # One entry per super-entry forfeits the two-address disambiguation.
    assert coverages[3] >= coverages[1] - 0.01


def test_ablation_sampling_probability(benchmark, oltp_trace):
    """Paper: 12.5% sampled metadata updates."""

    def sweep():
        return {p: _coverage(oltp_trace,
                             SystemConfig().scaled(sampling_probability=p))
                for p in (0.03125, 0.125, 0.5, 1.0)}

    coverages = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["coverage_by_sampling"] = coverages
    assert coverages[1.0] >= coverages[0.03125] - 0.02


def test_ablation_active_streams(benchmark, oltp_trace):
    """Paper: four active streams."""

    def sweep():
        return {n: _coverage(oltp_trace, SystemConfig().scaled(active_streams=n))
                for n in (1, 2, 4, 8)}

    coverages = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["coverage_by_streams"] = coverages
    assert coverages[4] >= coverages[1] - 0.02


def test_ablation_stream_end_detection(benchmark, oltp_trace):
    """Stream-end detection trades a little coverage for overpredictions."""

    def sweep():
        out = {}
        for enabled in (True, False):
            config = SystemConfig().scaled(stream_end_detection=enabled)
            result = simulate_trace(oltp_trace, config,
                                    make_prefetcher("domino", config),
                                    warmup=WARMUP)
            out[enabled] = (result.coverage, result.overprediction_ratio)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["by_stream_end"] = {
        str(k): v for k, v in results.items()}


def test_ablation_prefetch_degree(benchmark, oltp_trace):
    """Degree 1 vs 4: coverage rises, so do overpredictions (Figs 11/13)."""

    def sweep():
        out = {}
        config = SystemConfig()
        for degree in (1, 2, 4, 8):
            result = simulate_trace(oltp_trace, config,
                                    make_prefetcher("domino", config,
                                                    degree=degree),
                                    warmup=WARMUP)
            out[degree] = (result.coverage, result.overprediction_ratio)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["by_degree"] = results
    assert results[4][0] >= results[1][0] - 0.01
    assert results[4][1] >= results[1][1]
