"""Benchmark: regenerate fig10 (Domino coverage vs EIT rows)."""


def test_fig10(run_quick):
    result = run_quick("fig10")
    assert result.rows
