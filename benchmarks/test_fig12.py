"""Benchmark: regenerate fig12 (stream length histogram)."""


def test_fig12(run_quick):
    result = run_quick("fig12")
    assert result.rows
