"""Benchmark: regenerate fig04 (lookup match rate vs depth)."""


def test_fig04(run_quick):
    result = run_quick("fig04")
    assert result.rows
    for row in result.rows:
        assert row[1] >= row[-1] - 1e-9  # shallower matches more often
