#!/usr/bin/env python
"""Fastpath wall-clock harness: fig11-style grid plus hot-path probes.

Four measurement groups, all sharing one JSON report
(``BENCH_PR10.json``) and one exit status CI can gate on:

* **grid** — one fig11-style sweep (workloads × paper prefetchers
  trace cells, plus one opportunity cell per workload) run twice under
  identical cold cell caches: ``DOMINO_FASTPATH=0`` (regenerate the
  trace, replay every access) vs. fastpath enabled against a store
  prewarmed with the grid's L1 filter artifacts.  The two passes must
  produce identical payload lists; the wall-clock ratio is gated by
  ``--min-speedup``.
* **hot_path** — microbenchmarks of the three components this PR
  vectorised, each measured in its ``legacy`` (PR 9-era) and current
  form: filter *build* (scalar L1 loop vs. numpy per-set sweep),
  filter *codec* (inline zlib+base64 JSON vs. binary ``.npy`` sidecar
  opened through ``mmap``), and replay *prep* (four per-call
  ``tolist()`` copies vs. one cached packed materialisation).  The
  combined legacy/current ratio is gated by ``--min-hotpath-speedup``.
* **modes** — the same serial probe grid under ``DOMINO_FASTPATH``
  ``0``/``1``/``jit``/``legacy``: every mode must produce bit-identical
  payloads (on a numba-less box ``jit`` exercises its soft fallback,
  which counts as a pass).
* **shm** — the pooled grid with and without shared-memory trace
  handoff (``DOMINO_TRACE_SHM``): identical payloads, and zero leaked
  ``/dev/shm`` segments from this process after both passes.

A final probe attaches an uncancelled
:class:`~repro.cancel.CancelToken` to a serial, cache-free pass and
gates its checkpoint overhead (default <= 2%) and payload equivalence,
so lifecycle instrumentation can never quietly tax or perturb the
engine loop.

Usage::

    PYTHONPATH=src python benchmarks/bench_fastpath.py \
        --jobs 2 --n 30000 --out BENCH_PR10.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.cancel import CancelToken
from repro.config import SystemConfig
from repro.experiments.common import ExperimentOptions
from repro.experiments.fig11_degree1 import build_cells
from repro.runner import ExecutionPolicy, run_cells, shm
from repro.runner import execute as execute_mod
from repro.sim import fastpath
from repro.workloads.suite import WorkloadSuite


def _reset_process_caches() -> None:
    """Forget every in-process memo so a pass starts cold.

    Worker processes are forked from this one, so anything memoised
    here (generated traces, decoded filters) would leak into both
    passes and blur the comparison.
    """
    execute_mod._SUITES.clear()
    execute_mod._FILTERS.clear()
    execute_mod.set_fastpath_root(None)
    execute_mod.set_trace_share(None)


def _prewarm_filters(options: ExperimentOptions, root: Path) -> float:
    """Build and persist the grid's L1 filter artifacts into ``root``.

    One full-trace filter per workload (trace cells) plus one
    measured-window filter per workload (opportunity cells) — exactly
    what the first fastpath-enabled grid over these options would have
    written.  Returns the wall-clock spent prewarming (reported, not
    counted into either pass).
    """
    config = SystemConfig()  # fig11 cells run the default config
    warmup = int(options.n_accesses * options.warmup_frac)
    started = time.perf_counter()
    execute_mod.set_fastpath_root(str(root))
    try:
        for workload in options.workloads:
            execute_mod._l1_filter(workload, options, config)
            execute_mod._l1_filter(workload, options, config,
                                   window=(warmup, options.n_accesses))
    finally:
        execute_mod.set_fastpath_root(None)
    return time.perf_counter() - started


def _run_pass(cells, options: ExperimentOptions, cache_dir: Path,
              jobs: int, fastpath_on: bool) -> tuple[float, list]:
    os.environ["DOMINO_FASTPATH"] = "1" if fastpath_on else "0"
    _reset_process_caches()
    policy = ExecutionPolicy(jobs=jobs, use_cache=True, cache_dir=cache_dir)
    started = time.perf_counter()
    payloads, manifest = run_cells(cells, options, policy)
    wall = time.perf_counter() - started
    if manifest.failed:
        raise RuntimeError(f"{manifest.failed} cell(s) failed; "
                           "benchmark numbers would be meaningless")
    return wall, payloads


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _measure_hot_path(options: ExperimentOptions, scratch: Path,
                      repeats: int = 3, reuses: int = 8) -> dict:
    """Legacy vs. current cost of the vectorised fastpath components.

    ``reuses`` models how many cells consume one persisted filter in a
    grid (fig11: 7 trace cells + 1 opportunity cell per workload): the
    codec's decode and the replay prep are paid once per consumer, the
    build and encode once per filter.
    """
    config = SystemConfig()
    workload = options.workloads[0]
    trace = WorkloadSuite(seed=options.seed).trace(workload,
                                                  options.n_accesses)

    # -- build: scalar L1 loop vs. numpy per-set sweep ------------------
    os.environ["DOMINO_FASTPATH"] = "legacy"
    build_legacy_s = _best_of(
        repeats, lambda: fastpath.build_l1_filter(trace, config))
    os.environ["DOMINO_FASTPATH"] = "1"
    build_vec_s = _best_of(
        repeats, lambda: fastpath.build_l1_filter(trace, config))
    filt = fastpath.build_l1_filter(trace, config)
    reference = fastpath.build_l1_filter_scalar(trace, config)
    builds_equal = all(
        np.array_equal(getattr(filt, f), getattr(reference, f))
        for f in ("indices", "pcs", "blocks", "evicted"))

    # -- codec: inline zlib+b64 JSON vs. .npy sidecar through mmap ------
    def json_roundtrip() -> None:
        document = json.dumps(fastpath.filter_to_payload(filt))
        for _ in range(reuses):
            fastpath.filter_from_payload(json.loads(document))

    sidecar_path = scratch / "hotpath-filter.bin"

    def binary_roundtrip() -> None:
        payload, data = fastpath.filter_to_binary(filt)
        sidecar_path.write_bytes(data)
        document = json.dumps(payload)
        for _ in range(reuses):
            served = json.loads(document)
            served["sidecar_path"] = str(sidecar_path)
            fastpath.filter_from_payload(served)

    codec_json_s = _best_of(repeats, json_roundtrip)
    codec_binary_s = _best_of(repeats, binary_roundtrip)

    # -- prep: four per-call tolist() copies vs. cached packed rows -----
    def prep_legacy() -> None:
        os.environ["DOMINO_FASTPATH"] = "legacy"
        for _ in range(reuses):
            filt.replay_rows()

    def prep_packed() -> None:
        os.environ["DOMINO_FASTPATH"] = "1"
        object.__setattr__(filt, "_rows", None)  # cold cache per repeat
        for _ in range(reuses):
            filt.replay_rows()

    prep_legacy_s = _best_of(repeats, prep_legacy)
    prep_packed_s = _best_of(repeats, prep_packed)
    os.environ["DOMINO_FASTPATH"] = "1"

    legacy_s = build_legacy_s + codec_json_s + prep_legacy_s
    current_s = build_vec_s + codec_binary_s + prep_packed_s
    return {
        "workload": workload,
        "n_accesses": options.n_accesses,
        "n_misses": filt.n_misses,
        "filter_reuses": reuses,
        "build_legacy_s": round(build_legacy_s, 4),
        "build_vectorised_s": round(build_vec_s, 4),
        "build_speedup": round(build_legacy_s / build_vec_s, 2)
        if build_vec_s else float("inf"),
        "builds_equal": builds_equal,
        "codec_json_s": round(codec_json_s, 4),
        "codec_binary_s": round(codec_binary_s, 4),
        "codec_speedup": round(codec_json_s / codec_binary_s, 2)
        if codec_binary_s else float("inf"),
        "prep_legacy_s": round(prep_legacy_s, 4),
        "prep_packed_s": round(prep_packed_s, 4),
        "prep_speedup": round(prep_legacy_s / prep_packed_s, 2)
        if prep_packed_s else float("inf"),
        "legacy_s": round(legacy_s, 4),
        "current_s": round(current_s, 4),
        "speedup": round(legacy_s / current_s, 4)
        if current_s else float("inf"),
    }


def _measure_modes(options: ExperimentOptions) -> dict:
    """Payload equivalence of every DOMINO_FASTPATH mode, serially."""
    probe = ExperimentOptions(
        n_accesses=options.n_accesses, seed=options.seed,
        workloads=options.workloads[:1])
    cells = build_cells(probe, degree=1)
    policy = ExecutionPolicy(jobs=1, use_cache=False)
    walls, payloads = {}, {}
    for value in fastpath.MODES:
        os.environ["DOMINO_FASTPATH"] = value
        _reset_process_caches()
        started = time.perf_counter()
        payloads[value], manifest = run_cells(cells, probe, policy)
        walls[value] = round(time.perf_counter() - started, 4)
        if manifest.failed:
            raise RuntimeError(f"mode {value!r} probe cell failed")
    os.environ["DOMINO_FASTPATH"] = "1"
    equivalent = all(payloads[value] == payloads["0"]
                     for value in fastpath.MODES)
    return {
        "modes": list(fastpath.MODES),
        "wall_s": walls,
        "jit_backend_available": fastpath.jit_available(),
        "equivalent": equivalent,
    }


def _measure_shm(cells, options: ExperimentOptions, jobs: int) -> dict:
    """Pooled grid with vs. without shared-memory trace handoff."""
    prefix = f"{shm.SEGMENT_PREFIX}{os.getpid()}x"

    def leaked() -> list[str]:
        return [n for n in shm.active_segments() if n.startswith(prefix)]

    policy = ExecutionPolicy(jobs=jobs, use_cache=False)
    walls, payloads = {}, {}
    os.environ["DOMINO_FASTPATH"] = "1"
    for label, value in (("off", "0"), ("on", "1")):
        os.environ["DOMINO_TRACE_SHM"] = value
        _reset_process_caches()
        started = time.perf_counter()
        payloads[label], manifest = run_cells(cells, options, policy)
        walls[label] = round(time.perf_counter() - started, 4)
        if manifest.failed:
            raise RuntimeError(f"shm={label} pass cell failed")
    os.environ.pop("DOMINO_TRACE_SHM", None)
    remaining = leaked()
    return {
        "jobs": jobs,
        "wall_s": walls,
        "equivalent": payloads["on"] == payloads["off"],
        "leaked_segments": remaining,
        "leak_free": not remaining,
    }


def _measure_cancel_overhead(options: ExperimentOptions,
                             repeats: int = 2) -> dict:
    """Wall-clock cost of cancellation checkpoints in the engine loop.

    Cancel tokens are only consulted on the serial path (the pool
    polls the token between results instead of shipping it), so the
    probe is a serial, cache-free full simulation of one workload's
    trace cells — the densest checkpoint exposure the runner has.
    Each variant runs ``repeats`` times and keeps its best wall so a
    single scheduler hiccup cannot fake a regression.
    """
    probe = ExperimentOptions(
        n_accesses=options.n_accesses, seed=options.seed,
        workloads=options.workloads[:1])
    cells = [c for c in build_cells(probe, degree=1) if c.kind == "trace"]
    policy = ExecutionPolicy(jobs=1, use_cache=False)

    def best_of(make_token):
        wall, payloads, token = float("inf"), None, None
        for _ in range(repeats):
            os.environ["DOMINO_FASTPATH"] = "0"
            _reset_process_caches()
            token = make_token()
            started = time.perf_counter()
            payloads, manifest = run_cells(cells, probe, policy, cancel=token)
            wall = min(wall, time.perf_counter() - started)
            if manifest.failed:
                raise RuntimeError("cancel-overhead probe cell failed")
        return wall, payloads, token

    plain_s, plain_payloads, _ = best_of(lambda: None)
    metered_s, metered_payloads, token = best_of(CancelToken)
    os.environ["DOMINO_FASTPATH"] = "1"
    expected = len(cells) * probe.n_accesses
    if token.progress != expected:
        raise RuntimeError(
            f"metered pass published {token.progress} accesses, "
            f"expected {expected}")
    overhead_pct = (metered_s / plain_s - 1.0) * 100.0 if plain_s else 0.0
    return {
        "cells": len(cells),
        "plain_s": round(plain_s, 4),
        "metered_s": round(metered_s, 4),
        "overhead_pct": round(overhead_pct, 4),
        "equivalent": plain_payloads == metered_payloads,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workloads",
                        default="oltp,web_apache,media_streaming",
                        help="comma-separated workload names")
    parser.add_argument("--n", type=int, default=60_000,
                        help="accesses per trace")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes per pass")
    parser.add_argument("--degree", type=int, default=1,
                        help="prefetch degree of the trace cells")
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--out", default="BENCH_PR10.json",
                        help="JSON report path")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="fail below this off/on grid wall ratio")
    parser.add_argument("--min-hotpath-speedup", type=float, default=2.0,
                        help="fail below this legacy/current hot-path "
                             "composite ratio")
    parser.add_argument("--max-cancel-overhead", type=float, default=2.0,
                        help="fail if an uncancelled token slows the "
                             "serial engine loop by more than this "
                             "percentage")
    parser.add_argument("--cache-dir", default=None,
                        help="scratch root for the passes "
                             "(default: a fresh temp dir)")
    args = parser.parse_args(argv)

    options = ExperimentOptions(
        n_accesses=args.n, seed=args.seed,
        workloads=tuple(w.strip() for w in args.workloads.split(",")
                        if w.strip()))
    cells = build_cells(options, args.degree)

    scratch = Path(args.cache_dir) if args.cache_dir else Path(
        tempfile.mkdtemp(prefix="bench-fastpath-"))
    scratch.mkdir(parents=True, exist_ok=True)
    off_root = scratch / "off-store"
    on_root = scratch / "on-store"

    print(f"grid: {len(cells)} cells "
          f"({len(options.workloads)} workloads, degree {args.degree}, "
          f"n={args.n:,}, jobs={args.jobs})")
    prewarm_s = _prewarm_filters(options, on_root)
    print(f"prewarmed {2 * len(options.workloads)} filter artifacts "
          f"in {prewarm_s:.2f}s -> {on_root}")

    off_wall, off_payloads = _run_pass(cells, options, off_root,
                                       args.jobs, fastpath_on=False)
    print(f"fastpath off: {off_wall:.2f}s")
    on_wall, on_payloads = _run_pass(cells, options, on_root,
                                     args.jobs, fastpath_on=True)
    print(f"fastpath on:  {on_wall:.2f}s (warm filter store)")

    hot_path = _measure_hot_path(options, scratch)
    print(f"hot path: build {hot_path['build_speedup']:g}x, "
          f"codec {hot_path['codec_speedup']:g}x, "
          f"prep {hot_path['prep_speedup']:g}x "
          f"-> composite {hot_path['speedup']:.2f}x")

    modes = _measure_modes(options)
    print(f"modes: {modes['wall_s']} equivalent={modes['equivalent']} "
          f"(jit backend available: {modes['jit_backend_available']})")

    shm_report = _measure_shm(cells, options, args.jobs)
    print(f"shm handoff: off {shm_report['wall_s']['off']:.2f}s, "
          f"on {shm_report['wall_s']['on']:.2f}s, "
          f"equivalent={shm_report['equivalent']}, "
          f"leak_free={shm_report['leak_free']}")

    cancel = _measure_cancel_overhead(options)
    print(f"cancel checkpoints: plain {cancel['plain_s']:.2f}s, "
          f"metered {cancel['metered_s']:.2f}s "
          f"({cancel['overhead_pct']:+.2f}%)")

    equivalent = off_payloads == on_payloads
    speedup = off_wall / on_wall if on_wall else float("inf")
    cancel_ok = (cancel["equivalent"]
                 and cancel["overhead_pct"] <= args.max_cancel_overhead)
    hotpath_ok = (hot_path["builds_equal"]
                  and hot_path["speedup"] >= args.min_hotpath_speedup)
    ok = (equivalent and speedup >= args.min_speedup and hotpath_ok
          and modes["equivalent"] and shm_report["equivalent"]
          and shm_report["leak_free"] and cancel_ok)

    report = {
        "benchmark": "fastpath_fig11_grid",
        "workloads": list(options.workloads),
        "n_accesses": args.n,
        "degree": args.degree,
        "seed": args.seed,
        "jobs": args.jobs,
        "cells": len(cells),
        "prewarm_s": round(prewarm_s, 4),
        "off_wall_s": round(off_wall, 4),
        "on_wall_s": round(on_wall, 4),
        "speedup": round(speedup, 4),
        "min_speedup": args.min_speedup,
        "equivalent": equivalent,
        "hot_path": hot_path,
        "min_hotpath_speedup": args.min_hotpath_speedup,
        "modes": modes,
        "shm": shm_report,
        "cancel_overhead": cancel,
        "max_cancel_overhead_pct": args.max_cancel_overhead,
        "pass": ok,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n",
                              encoding="utf-8")
    print(f"speedup: {speedup:.2f}x (min {args.min_speedup:g}x), "
          f"hot path {hot_path['speedup']:.2f}x "
          f"(min {args.min_hotpath_speedup:g}x), "
          f"equivalent: {equivalent} -> {args.out}")
    if not equivalent:
        print("FAIL: fastpath-on payloads differ from fastpath-off",
              file=sys.stderr)
    elif not hot_path["builds_equal"]:
        print("FAIL: vectorised filter differs from scalar reference",
              file=sys.stderr)
    elif hot_path["speedup"] < args.min_hotpath_speedup:
        print(f"FAIL: hot-path speedup {hot_path['speedup']:.2f}x below "
              f"{args.min_hotpath_speedup:g}x", file=sys.stderr)
    elif not modes["equivalent"]:
        print("FAIL: DOMINO_FASTPATH modes disagree", file=sys.stderr)
    elif not shm_report["equivalent"]:
        print("FAIL: shm trace handoff perturbed payloads", file=sys.stderr)
    elif not shm_report["leak_free"]:
        print(f"FAIL: leaked shm segments {shm_report['leaked_segments']}",
              file=sys.stderr)
    elif not cancel["equivalent"]:
        print("FAIL: metered payloads differ from unmetered",
              file=sys.stderr)
    elif cancel["overhead_pct"] > args.max_cancel_overhead:
        print(f"FAIL: cancel-checkpoint overhead "
              f"{cancel['overhead_pct']:.2f}% above "
              f"{args.max_cancel_overhead:g}%", file=sys.stderr)
    elif not ok:
        print(f"FAIL: speedup {speedup:.2f}x below "
              f"{args.min_speedup:g}x", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
