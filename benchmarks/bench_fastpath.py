#!/usr/bin/env python
"""Fastpath wall-clock harness: fig11-style grid, fastpath on vs. off.

Measures the end-to-end cost of one fig11-style sweep (workloads ×
paper prefetchers trace cells, plus one opportunity cell per workload)
twice under identical, cold cell caches:

* **off** — ``DOMINO_FASTPATH=0``: every cell regenerates its trace
  (once per worker process) and replays all accesses through the L1;
* **on** — fastpath enabled against a store prewarmed with the grid's
  L1 filter artifacts: trace generation is skipped entirely (the filter
  key is computable without the trace) and each cell replays only the
  miss fraction.

The "warm artifact store" scenario is the steady state the fastpath
exists for: the filters are shared by every cell of the grid, by
``--resume``, and by any later sweep with the same trace identity, so
after the first grid they are always already on disk.

Alongside the timing the harness re-checks the fastpath contract: the
two passes must produce *identical* payload lists.  A third probe
attaches an uncancelled :class:`~repro.cancel.CancelToken` to a
serial, cache-free pass and gates its checkpoint overhead (default
<= 2%) and payload equivalence, so lifecycle instrumentation can
never quietly tax or perturb the engine loop.  Results go to a
JSON report (``BENCH_PR5.json``) and the exit status is non-zero if
the speedup falls below ``--min-speedup`` or the equivalence check
fails, so CI can gate on it.

Usage::

    PYTHONPATH=src python benchmarks/bench_fastpath.py \
        --jobs 4 --out BENCH_PR5.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.cancel import CancelToken
from repro.config import SystemConfig
from repro.experiments.common import ExperimentOptions
from repro.experiments.fig11_degree1 import build_cells
from repro.runner import ExecutionPolicy, run_cells
from repro.runner import execute as execute_mod


def _reset_process_caches() -> None:
    """Forget every in-process memo so a pass starts cold.

    Worker processes are forked from this one, so anything memoised
    here (generated traces, decoded filters) would leak into both
    passes and blur the comparison.
    """
    execute_mod._SUITES.clear()
    execute_mod._FILTERS.clear()
    execute_mod.set_fastpath_root(None)


def _prewarm_filters(options: ExperimentOptions, root: Path) -> float:
    """Build and persist the grid's L1 filter artifacts into ``root``.

    One full-trace filter per workload (trace cells) plus one
    measured-window filter per workload (opportunity cells) — exactly
    what the first fastpath-enabled grid over these options would have
    written.  Returns the wall-clock spent prewarming (reported, not
    counted into either pass).
    """
    config = SystemConfig()  # fig11 cells run the default config
    warmup = int(options.n_accesses * options.warmup_frac)
    started = time.perf_counter()
    execute_mod.set_fastpath_root(str(root))
    try:
        for workload in options.workloads:
            execute_mod._l1_filter(workload, options, config)
            execute_mod._l1_filter(workload, options, config,
                                   window=(warmup, options.n_accesses))
    finally:
        execute_mod.set_fastpath_root(None)
    return time.perf_counter() - started


def _run_pass(cells, options: ExperimentOptions, cache_dir: Path,
              jobs: int, fastpath: bool) -> tuple[float, list]:
    os.environ["DOMINO_FASTPATH"] = "1" if fastpath else "0"
    _reset_process_caches()
    policy = ExecutionPolicy(jobs=jobs, use_cache=True, cache_dir=cache_dir)
    started = time.perf_counter()
    payloads, manifest = run_cells(cells, options, policy)
    wall = time.perf_counter() - started
    if manifest.failed:
        raise RuntimeError(f"{manifest.failed} cell(s) failed; "
                           "benchmark numbers would be meaningless")
    return wall, payloads


def _measure_cancel_overhead(options: ExperimentOptions,
                             repeats: int = 2) -> dict:
    """Wall-clock cost of cancellation checkpoints in the engine loop.

    Cancel tokens are only consulted on the serial path (the pool
    polls the token between results instead of shipping it), so the
    probe is a serial, cache-free full simulation of one workload's
    trace cells — the densest checkpoint exposure the runner has.
    Each variant runs ``repeats`` times and keeps its best wall so a
    single scheduler hiccup cannot fake a regression.
    """
    probe = ExperimentOptions(
        n_accesses=options.n_accesses, seed=options.seed,
        workloads=options.workloads[:1])
    cells = [c for c in build_cells(probe, degree=1) if c.kind == "trace"]
    policy = ExecutionPolicy(jobs=1, use_cache=False)

    def best_of(make_token):
        wall, payloads, token = float("inf"), None, None
        for _ in range(repeats):
            os.environ["DOMINO_FASTPATH"] = "0"
            _reset_process_caches()
            token = make_token()
            started = time.perf_counter()
            payloads, manifest = run_cells(cells, probe, policy, cancel=token)
            wall = min(wall, time.perf_counter() - started)
            if manifest.failed:
                raise RuntimeError("cancel-overhead probe cell failed")
        return wall, payloads, token

    plain_s, plain_payloads, _ = best_of(lambda: None)
    metered_s, metered_payloads, token = best_of(CancelToken)
    expected = len(cells) * probe.n_accesses
    if token.progress != expected:
        raise RuntimeError(
            f"metered pass published {token.progress} accesses, "
            f"expected {expected}")
    overhead_pct = (metered_s / plain_s - 1.0) * 100.0 if plain_s else 0.0
    return {
        "cells": len(cells),
        "plain_s": round(plain_s, 4),
        "metered_s": round(metered_s, 4),
        "overhead_pct": round(overhead_pct, 4),
        "equivalent": plain_payloads == metered_payloads,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workloads",
                        default="oltp,web_apache,media_streaming",
                        help="comma-separated workload names")
    parser.add_argument("--n", type=int, default=60_000,
                        help="accesses per trace")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes per pass")
    parser.add_argument("--degree", type=int, default=1,
                        help="prefetch degree of the trace cells")
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--out", default="BENCH_PR5.json",
                        help="JSON report path")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="fail below this off/on wall-clock ratio")
    parser.add_argument("--max-cancel-overhead", type=float, default=2.0,
                        help="fail if an uncancelled token slows the "
                             "serial engine loop by more than this "
                             "percentage")
    parser.add_argument("--cache-dir", default=None,
                        help="scratch root for the two passes "
                             "(default: a fresh temp dir)")
    args = parser.parse_args(argv)

    options = ExperimentOptions(
        n_accesses=args.n, seed=args.seed,
        workloads=tuple(w.strip() for w in args.workloads.split(",")
                        if w.strip()))
    cells = build_cells(options, args.degree)

    scratch = Path(args.cache_dir) if args.cache_dir else Path(
        tempfile.mkdtemp(prefix="bench-fastpath-"))
    off_root = scratch / "off-store"
    on_root = scratch / "on-store"

    print(f"grid: {len(cells)} cells "
          f"({len(options.workloads)} workloads, degree {args.degree}, "
          f"n={args.n:,}, jobs={args.jobs})")
    prewarm_s = _prewarm_filters(options, on_root)
    print(f"prewarmed {2 * len(options.workloads)} filter artifacts "
          f"in {prewarm_s:.2f}s -> {on_root}")

    off_wall, off_payloads = _run_pass(cells, options, off_root,
                                       args.jobs, fastpath=False)
    print(f"fastpath off: {off_wall:.2f}s")
    on_wall, on_payloads = _run_pass(cells, options, on_root,
                                     args.jobs, fastpath=True)
    print(f"fastpath on:  {on_wall:.2f}s (warm filter store)")

    cancel = _measure_cancel_overhead(options)
    print(f"cancel checkpoints: plain {cancel['plain_s']:.2f}s, "
          f"metered {cancel['metered_s']:.2f}s "
          f"({cancel['overhead_pct']:+.2f}%)")

    equivalent = off_payloads == on_payloads
    speedup = off_wall / on_wall if on_wall else float("inf")
    cancel_ok = (cancel["equivalent"]
                 and cancel["overhead_pct"] <= args.max_cancel_overhead)
    ok = equivalent and speedup >= args.min_speedup and cancel_ok

    report = {
        "benchmark": "fastpath_fig11_grid",
        "workloads": list(options.workloads),
        "n_accesses": args.n,
        "degree": args.degree,
        "seed": args.seed,
        "jobs": args.jobs,
        "cells": len(cells),
        "prewarm_s": round(prewarm_s, 4),
        "off_wall_s": round(off_wall, 4),
        "on_wall_s": round(on_wall, 4),
        "speedup": round(speedup, 4),
        "min_speedup": args.min_speedup,
        "equivalent": equivalent,
        "cancel_overhead": cancel,
        "max_cancel_overhead_pct": args.max_cancel_overhead,
        "pass": ok,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n",
                              encoding="utf-8")
    print(f"speedup: {speedup:.2f}x (min {args.min_speedup:g}x), "
          f"equivalent: {equivalent} -> {args.out}")
    if not equivalent:
        print("FAIL: fastpath-on payloads differ from fastpath-off",
              file=sys.stderr)
    elif not cancel["equivalent"]:
        print("FAIL: metered payloads differ from unmetered",
              file=sys.stderr)
    elif cancel["overhead_pct"] > args.max_cancel_overhead:
        print(f"FAIL: cancel-checkpoint overhead "
              f"{cancel['overhead_pct']:.2f}% above "
              f"{args.max_cancel_overhead:g}%", file=sys.stderr)
    elif not ok:
        print(f"FAIL: speedup {speedup:.2f}x below "
              f"{args.min_speedup:g}x", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
