"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's figures/tables at reduced
scale (``ExperimentOptions.quick()``: 60 k accesses, three
representative workloads) and reports the rows via
``benchmark.extra_info`` so the shape can be inspected from the
pytest-benchmark output.  Experiments run once per benchmark (they are
deterministic; statistical repetition adds nothing but wall-clock).

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest

from repro.experiments import ExperimentOptions, run_experiment


@pytest.fixture(scope="session")
def quick_options() -> ExperimentOptions:
    return ExperimentOptions.quick()


@pytest.fixture
def run_quick(benchmark, quick_options):
    """Run one experiment once under the benchmark clock."""

    def _run(experiment_id: str, options: ExperimentOptions | None = None):
        opts = options or quick_options
        result = benchmark.pedantic(
            run_experiment, args=(experiment_id, opts),
            rounds=1, iterations=1, warmup_rounds=0)
        benchmark.extra_info["experiment"] = experiment_id
        benchmark.extra_info["title"] = result.title
        benchmark.extra_info["rows"] = [
            [str(cell) for cell in row] for row in result.rows]
        return result

    return _run
