"""Benchmark: regenerate fig13 (full comparison, degree 4)."""


def test_fig13(run_quick):
    result = run_quick("fig13")
    assert result.rows
